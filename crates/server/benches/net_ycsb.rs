//! Over-the-wire YCSB-A throughput vs. pipeline depth, plus a durable-ack
//! crash check (DESIGN.md §13).
//!
//! Phase 1 measures what the RESP front-end's pipelining→batching path is
//! worth: a fixed number of client connections drive a 50/50 GET/SET mix
//! (YCSB-A shape) at pipeline depth 1 and depth 64 against a WAL-backed
//! store whose WAL device carries the NVMe latency model, so every
//! mutation ack pays a realistic group-commit fsync. At depth 1 each
//! round trip eats a socket RTT plus a commit barrier; at depth 64 the
//! server turns the window into batched execution and one shared
//! durability gate, so throughput should scale far past the
//! `FASTER_BENCH_NET_MIN_RATIO` (default 4×) gate that
//! `scripts/bench_smoke.sh` applies to `BENCH_net.json`.
//!
//! Phase 2 re-checks the ack contract under the same harness the crash
//! tests use: pipeline a few thousand SETs, take only a prefix of the
//! `+OK`s, kill the server with replies still in flight, recover the store
//! from the WAL, and verify every acked key. The emitted row carries
//! `recovered_ok`; the smoke gate fails unless it is `true`.
//!
//! Knobs: `FASTER_BENCH_NET_KEYS` (default 100 K), `FASTER_BENCH_NET_SECS`
//! (seconds per depth, default 1.0), `FASTER_BENCH_NET_CONNS` (default 2),
//! `FASTER_BENCH_NET_SETS` (durability-phase pipeline length, default
//! 2000).

use faster_core::ckpt_manager::{self, CheckpointConfig};
use faster_core::{CountStore, FasterKv, FasterKvConfig, Outcome};
use faster_server::{Server, ServerConfig, Store};
use faster_storage::{Device, LatencyModel, MemDevice};
use faster_util::XorShift64;
use faster_wal::WalConfig;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Minimal pipelining client: sends raw frames, counts complete replies.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        Client { stream, buf: Vec::new(), pos: 0 }
    }

    /// Length of one complete reply frame at `data`, or `None` if partial.
    fn frame_len(data: &[u8]) -> Option<usize> {
        let nl = data.iter().position(|&b| b == b'\n')?;
        if data[0] != b'$' {
            return Some(nl + 1);
        }
        let len: i64 = std::str::from_utf8(&data[1..nl - 1]).ok()?.parse().ok()?;
        if len < 0 {
            return Some(nl + 1); // nil bulk
        }
        let end = nl + 1 + len as usize + 2;
        (data.len() >= end).then_some(end)
    }

    /// Blocks until `n` replies have arrived; panics on an `-ERR`.
    fn read_replies(&mut self, n: usize) {
        let mut got = 0usize;
        while got < n {
            while let Some(used) = Self::frame_len(&self.buf[self.pos..]) {
                if self.buf[self.pos] == b'-' {
                    let line = String::from_utf8_lossy(&self.buf[self.pos..self.pos + used]);
                    panic!("server error reply: {}", line.trim_end());
                }
                self.pos += used;
                got += 1;
                if got == n {
                    break;
                }
            }
            if self.pos == self.buf.len() {
                self.buf.clear();
                self.pos = 0;
            }
            if got == n {
                break;
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => panic!("server closed mid-pipeline"),
                Ok(read) => self.buf.extend_from_slice(&chunk[..read]),
                Err(e) => panic!("client read failed: {e}"),
            }
        }
    }
}

/// WAL-backed store whose commit barriers cost a modeled NVMe fsync.
fn wal_store(keys: u64, log_dev: Arc<dyn Device>, wal_dev: Arc<dyn Device>) -> Store {
    let cfg = FasterKvConfig::for_keys(keys)
        .with_wal(WalConfig { batch_window: Duration::ZERO, segment_size: 1 << 20 });
    FasterKv::new_with_wal(cfg, CountStore, log_dev, wal_dev)
}

/// Drives `conns` client threads at pipeline `depth` for `dur`; returns
/// total completed operations.
fn run_depth(addr: std::net::SocketAddr, conns: usize, depth: usize, keys: u64, dur: Duration) -> u64 {
    let handles: Vec<_> = (0..conns)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let mut rng = XorShift64::new(0xBE7C_u64 + t as u64);
                let mut frame = Vec::with_capacity(depth * 16);
                // Warm the connection (and the server's batch path).
                frame.extend_from_slice(b"PING\r\n");
                c.stream.write_all(&frame).unwrap();
                c.read_replies(1);
                let start = Instant::now();
                let mut ops = 0u64;
                while start.elapsed() < dur {
                    frame.clear();
                    for _ in 0..depth {
                        let k = rng.next_below(keys);
                        // YCSB-A: half reads, half blind updates.
                        if rng.next_below(2) == 0 {
                            frame.extend_from_slice(format!("GET {k}\r\n").as_bytes());
                        } else {
                            frame.extend_from_slice(format!("SET {k} {ops}\r\n").as_bytes());
                        }
                    }
                    c.stream.write_all(&frame).unwrap();
                    c.read_replies(depth);
                    ops += depth as u64;
                }
                ops
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().expect("client thread")).sum()
}

fn main() {
    let keys = env_u64("FASTER_BENCH_NET_KEYS", 100_000);
    let conns = env_u64("FASTER_BENCH_NET_CONNS", 2) as usize;
    let dur = Duration::from_secs_f64(env_f64("FASTER_BENCH_NET_SECS", 1.0).clamp(0.1, 30.0));

    // ---- Phase 1: throughput vs. pipeline depth at a fixed conn count.
    let store = wal_store(
        keys,
        MemDevice::new(4),
        MemDevice::with_latency(1, LatencyModel::nvme()),
    );
    {
        let session = store.start_session();
        for k in 0..keys {
            session.upsert(&k, &k).unwrap();
        }
        session.complete_pending(true);
        session.wait_wal_durable().unwrap();
    }
    let server = Server::start(store, "127.0.0.1:0", ServerConfig::default()).expect("server");
    println!(
        "# net_ycsb: {keys} keys, {conns} conns, YCSB-A over RESP, NVMe-latency WAL, {:.1}s/depth",
        dur.as_secs_f64()
    );
    let mut results: Vec<(usize, f64)> = Vec::new();
    for depth in [1usize, 64] {
        let start = Instant::now();
        let ops = run_depth(server.local_addr(), conns, depth, keys, dur);
        let secs = start.elapsed().as_secs_f64();
        let kops = ops as f64 / secs / 1e3;
        println!("net_ycsb depth={depth:<3} {kops:>9.1} Kops ({conns} conns)");
        println!(
            "json,{{\"bench\":\"net_ycsb\",\"depth\":{depth},\"conns\":{conns},\"ops\":{ops},\
             \"secs\":{secs:.4},\"kops\":{kops:.1}}}"
        );
        results.push((depth, kops));
    }
    server.shutdown();
    if let (Some(&(_, d1)), Some(&(_, d64))) = (
        results.iter().find(|(d, _)| *d == 1),
        results.iter().find(|(d, _)| *d == 64),
    ) {
        println!("speedup: depth64/depth1 {:.2}x", d64 / d1);
    }

    // ---- Phase 2: durable-ack verification through a server kill.
    let sets = env_u64("FASTER_BENCH_NET_SETS", 2_000);
    let log_dev: Arc<dyn Device> = MemDevice::new(2);
    let ckpt_dev: Arc<dyn Device> = MemDevice::new(1);
    let wal_dev: Arc<dyn Device> = MemDevice::new(1);
    let store = wal_store(sets * 2, log_dev.clone(), wal_dev.clone());
    let cfg = FasterKvConfig::for_keys(sets * 2)
        .with_wal(WalConfig { batch_window: Duration::ZERO, segment_size: 1 << 20 });
    let server = Server::start(store, "127.0.0.1:0", ServerConfig { workers: 1 }).expect("server");
    let mut c = Client::connect(server.local_addr());
    let mut frame = Vec::new();
    for k in 0..sets {
        frame.extend_from_slice(format!("SET {k} {}\r\n", k + 1).as_bytes());
    }
    c.stream.write_all(&frame).unwrap();
    // Take only a prefix of the acks, then kill the server mid-pipeline.
    let acked = sets / 4;
    c.read_replies(acked as usize);
    server.shutdown();
    drop(server);
    drop(c);

    let rec = ckpt_manager::recover_store_with_wal::<u64, u64, CountStore>(
        cfg,
        CountStore,
        log_dev,
        ckpt_dev,
        wal_dev,
        CheckpointConfig::default(),
    )
    .expect("recovery after server kill");
    let session = rec.store.start_session();
    let mut recovered = 0u64;
    for k in 0..acked {
        let got = match session.read(&k, &0) {
            Ok(Outcome::Value(v)) => Some(v),
            Err(faster_core::OpError::Pending(_)) => session
                .complete_pending(true)
                .into_iter()
                .find_map(|comp| match comp.result {
                    Ok(Outcome::Value(v)) => Some(v),
                    _ => None,
                }),
            _ => None,
        };
        if got == Some(k + 1) {
            recovered += 1;
        }
    }
    let ok = recovered == acked;
    println!(
        "net_ycsb durability: {acked}/{sets} acks taken, {recovered} recovered, ok={ok}"
    );
    println!(
        "json,{{\"bench\":\"net_ycsb\",\"mode\":\"durability\",\"sets\":{sets},\
         \"acked\":{acked},\"recovered\":{recovered},\"recovered_ok\":{ok}}}"
    );
}
