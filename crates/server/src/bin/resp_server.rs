//! Quick-start RESP server: a WAL-backed in-memory `FasterKv` behind the
//! network front-end, good for poking at with `redis-cli` or `nc`.
//!
//! ```text
//! cargo run --release -p faster-server --bin resp_server -- 127.0.0.1:6379
//! nc 127.0.0.1 6379
//! SET 1 41
//! INCR 1
//! GET 1
//! ```
//!
//! Devices are `MemDevice`s, so the store (and its WAL) is volatile — this
//! binary demonstrates the wire protocol and the durability-gated ack
//! path, not persistence across process restarts.

use faster_core::{CountStore, FasterKv, FasterKvConfig, WalConfig};
use faster_server::{Server, ServerConfig};
use faster_storage::MemDevice;
use std::time::Duration;

fn main() {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:6379".into());
    let workers = std::env::var("FASTER_SERVER_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let cfg = FasterKvConfig::for_keys(1 << 20)
        .with_wal(WalConfig { batch_window: Duration::ZERO, segment_size: 1 << 20 });
    let store = FasterKv::new_with_wal(cfg, CountStore, MemDevice::new(8), MemDevice::new(2));
    let server = Server::start(store, &addr, ServerConfig { workers })
        .unwrap_or_else(|e| panic!("bind {addr}: {e}"));
    println!(
        "faster-server listening on {} ({} workers) — GET/SET/DEL/INCR/INCRBY/PING/QUIT",
        server.local_addr(),
        workers
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
