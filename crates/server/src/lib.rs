//! RESP network front-end (DESIGN.md §13): a TCP server that speaks the
//! Redis serialization protocol over a `FasterKv<u64, u64, CountStore>`,
//! turning client pipelining into the store's batched execution.
//!
//! ## Architecture
//!
//! One acceptor thread round-robins connections over `N` worker threads.
//! Each worker owns exactly one [`Session`] — sessions are the store's unit
//! of thread registration — plus a `poll(2)` set over its connections and a
//! non-blocking self-pipe. The session's completion ring is wired to that
//! pipe via [`Session::set_io_waker`], so the worker parks in **one**
//! `poll` call that wakes for either kind of event:
//!
//! * socket readiness — bytes to parse, or room to flush replies;
//! * ring CQEs — disk-read completions and WAL group-commit durability
//!   notices, pushed by I/O and commit threads.
//!
//! ## Pipelining → batching
//!
//! Every complete frame sitting in a connection's input buffer after one
//! read burst is decoded in one pass and driven through
//! [`Session::execute_batch`] as a single [`BatchOp`] slice — a client
//! pipelining at depth 64 gets the store's batched index prefetch and one
//! health check per batch, not 64 scalar calls. Replies are queued in
//! command order and emitted strictly in order; a reply whose operation
//! went pending (`OpError::Pending`) or whose durability ack is still in
//! flight holds up the replies behind it, exactly as RESP requires.
//!
//! ## Durability and degradation
//!
//! On a WAL-backed store, every mutation reply (`SET` → `+OK`, `DEL` →
//! `:1`, `INCR` → `:n`) is **held until the covering WAL group commit is
//! durable**: after each batch the worker registers a ring-routed
//! durability notice ([`Session::notify_wal_durable`]) and gates those
//! replies on it. An acked `SET` therefore survives killing the server
//! process — the over-the-wire crash tests recover the store from the WAL
//! and check exactly that. A store degraded to read-only (DESIGN.md §12)
//! refuses mutations with `-READONLY <reason>` while reads keep serving.
//!
//! ## Wire dialect
//!
//! Keys and values are decimal `u64`s (the store is fixed-width).
//! `GET`/`SET`/`DEL`/`INCR`/`INCRBY`/`PING`/`QUIT` are implemented; `DEL`
//! always answers `:1` (the store's tombstone append does not report prior
//! existence), and `INCR` answers the value read back after the RMW — exact
//! for keys owned by one connection, approximate under cross-connection
//! races on the same key.

mod resp;

pub use resp::Command;

use faster_core::{BatchOp, CountStore, FasterKv, OpError, Outcome, Session};
use faster_storage::IoError;
use libc::{c_int, c_void, nfds_t, pollfd, O_NONBLOCK, POLLERR, POLLHUP, POLLIN, POLLOUT};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The store type this front-end serves: fixed-width counters, RMW = add.
pub type Store = FasterKv<u64, u64, CountStore>;
type WorkerSession = Session<u64, u64, CountStore>;

/// Park bound when continuations may need a driving call with no wake-up
/// event of their own (fuzzy-region RMW retries).
const BUSY_POLL_MS: c_int = 10;
/// Park bound when idle: shutdown poll only; every data event has a waker.
const IDLE_POLL_MS: c_int = 200;

// ----------------------------------------------------------------- self-pipe

/// The write end of a worker's self-pipe, shared by the session's ring
/// waker and the server handle. `armed` dedupes: one byte in the pipe is
/// enough to wake `poll`, so consecutive wakes between two worker passes
/// collapse into one write.
struct Waker {
    wr: c_int,
    armed: AtomicBool,
}

impl Waker {
    fn wake(&self) {
        if !self.armed.swap(true, Ordering::AcqRel) {
            let byte = 1u8;
            // A full pipe (EAGAIN) already wakes the worker; ignore errors.
            unsafe { libc::write(self.wr, &byte as *const u8 as *const c_void, 1) };
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { libc::close(self.wr) };
    }
}

/// The read end, owned by its worker.
struct PipeReader(c_int);

impl PipeReader {
    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { libc::read(self.0, buf.as_mut_ptr() as *mut c_void, buf.len()) };
            if n <= 0 {
                break; // empty (EAGAIN) or closed
            }
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        unsafe { libc::close(self.0) };
    }
}

fn self_pipe() -> io::Result<(PipeReader, Arc<Waker>)> {
    let mut fds = [0 as c_int; 2];
    if unsafe { libc::pipe2(fds.as_mut_ptr(), O_NONBLOCK) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((PipeReader(fds[0]), Arc::new(Waker { wr: fds[1], armed: AtomicBool::new(false) })))
}

// -------------------------------------------------------------- reply queue

/// How a resolved read value renders.
#[derive(Clone, Copy)]
enum Render {
    /// `GET`: bulk string, or nil when absent.
    Value,
    /// `INCR` read-back: RESP integer.
    Int,
}

/// What a queued reply still waits for before its payload is final.
enum PendingOp {
    /// A read that went to disk; the completion's value renders the reply.
    Read { render: Render },
    /// An `INCR` whose RMW went pending: once it applies, the worker
    /// registers its durability gate and issues the read-back.
    RmwThenRead { key: u64 },
}

/// One in-order reply slot. Emittable when `op` and `wal` are both `None`.
struct Reply {
    bytes: Vec<u8>,
    op: Option<PendingOp>,
    wal: Option<u64>,
}

impl Reply {
    fn ready(bytes: Vec<u8>) -> Self {
        Reply { bytes, op: None, wal: None }
    }
}

// --------------------------------------------------------------- connection

struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Parsed commands not yet executed. Execution drains this in segments;
    /// a pending RMW stalls the drain (see `stall_seq`) so per-connection
    /// serial semantics survive pipelining.
    queued: VecDeque<Command>,
    /// A protocol error poisoned the stream: once `queued` drains, this
    /// `-ERR` goes out and the connection closes.
    poisoned: Option<String>,
    replies: VecDeque<Reply>,
    /// Sequence number of `replies.front()`; pending-op bookkeeping
    /// addresses replies as `(conn id, seq)` so resolution survives pops.
    seq_base: u64,
    /// The reply whose in-flight RMW blocks executing anything behind it.
    /// Upserts and deletes apply synchronously and pending *reads* resolve
    /// against the record version captured at issue time, so neither
    /// reorders against later commands — but an RMW that went pending
    /// applies whenever its continuation runs, and any command executed
    /// before then would invert the connection's serial order.
    stall_seq: Option<u64>,
    /// Peer closed its write side, or a protocol error poisoned the stream:
    /// stop reading, flush what is owed, then close.
    no_more_input: bool,
    /// Read or write failed outright: drop without flushing.
    broken: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            queued: VecDeque::new(),
            poisoned: None,
            replies: VecDeque::new(),
            seq_base: 0,
            stall_seq: None,
            no_more_input: false,
            broken: false,
        }
    }

    fn next_seq(&self) -> u64 {
        self.seq_base + self.replies.len() as u64
    }

    fn reply_mut(&mut self, seq: u64) -> Option<&mut Reply> {
        seq.checked_sub(self.seq_base).and_then(|i| self.replies.get_mut(i as usize))
    }

    /// Reads until the socket runs dry.
    fn fill(&mut self) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.no_more_input = true;
                    break;
                }
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.broken = true;
                    break;
                }
            }
        }
    }

    /// Writes the output buffer until the socket pushes back.
    fn flush(&mut self) {
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => {
                    self.broken = true;
                    break;
                }
                Ok(n) => {
                    self.outbuf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.broken = true;
                    break;
                }
            }
        }
    }

    /// Decodes every complete frame in the input buffer into the command
    /// queue. A protocol error poisons the stream: already-queued commands
    /// still execute, then the stored `-ERR` goes out and the stream
    /// closes. `QUIT` likewise stops parsing; anything pipelined behind it
    /// is discarded.
    fn parse_input(&mut self) {
        if self.broken || self.poisoned.is_some() {
            return;
        }
        let mut consumed = 0usize;
        loop {
            match resp::parse(&self.inbuf[consumed..]) {
                Ok(resp::Parsed::Partial) => break,
                // Bare newlines and `*0` arrays: dropped without a reply,
                // the way Redis treats them.
                Ok(resp::Parsed::Empty(n)) => consumed += n,
                Err(resp::ParseError(msg)) => {
                    self.poisoned = Some(format!("ERR Protocol error: {msg}"));
                    self.no_more_input = true;
                    consumed = self.inbuf.len();
                    break;
                }
                Ok(resp::Parsed::Frame(cmd, n)) => {
                    consumed += n;
                    let quit = cmd == Command::Quit;
                    self.queued.push_back(cmd);
                    if quit {
                        self.no_more_input = true;
                        consumed = self.inbuf.len();
                        break;
                    }
                }
            }
        }
        self.inbuf.drain(..consumed);
    }

    /// Everything owed has been sent and no more will be produced.
    fn finished(&self) -> bool {
        self.broken
            || (self.no_more_input
                && self.outbuf.is_empty()
                && self.replies.is_empty()
                && self.queued.is_empty()
                && self.poisoned.is_none())
    }
}

// ------------------------------------------------------------------- worker

struct Worker {
    session: WorkerSession,
    pipe: PipeReader,
    waker: Arc<Waker>,
    incoming: mpsc::Receiver<TcpStream>,
    shutdown: Arc<AtomicBool>,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    /// Pending op id → the reply it renders.
    ops: HashMap<u64, (u64, u64)>,
    /// Durability notice id → replies still gated on it. An entry lives
    /// until its result has arrived *and* no reply references it.
    wal_refs: HashMap<u64, usize>,
    wal_results: HashMap<u64, Result<(), IoError>>,
}

impl Worker {
    fn run(mut self) {
        {
            let w = self.waker.clone();
            self.session.set_io_waker(move || w.wake());
        }
        let mut pfds: Vec<pollfd> = Vec::new();
        let mut slots: Vec<u64> = Vec::new();
        while !self.shutdown.load(Ordering::Acquire) {
            pfds.clear();
            slots.clear();
            pfds.push(pollfd { fd: self.pipe.0, events: POLLIN, revents: 0 });
            for (&id, c) in &self.conns {
                let mut ev = POLLIN; // HUP/ERR report regardless
                if !c.outbuf.is_empty() {
                    ev |= POLLOUT;
                }
                pfds.push(pollfd { fd: c.stream.as_raw_fd(), events: ev, revents: 0 });
                slots.push(id);
            }
            // Disk reads and WAL acks wake us through the self-pipe; only
            // driving-call-only continuations (fuzzy RMW retries) need a
            // short park to make progress without one.
            let timeout = if self.ops.is_empty() { IDLE_POLL_MS } else { BUSY_POLL_MS };
            unsafe { libc::poll(pfds.as_mut_ptr(), pfds.len() as nfds_t, timeout) };
            // Drain BEFORE clearing the dedupe flag. Once `armed` is false,
            // a wake() writes a byte that no drain consumes until after the
            // next poll, so it can never be silently absorbed; clearing
            // first opens a window where a wake's byte lands in the drain
            // while `armed` stays true, suppressing every later wake for a
            // full idle park. (A byte written between the store and the
            // poll just makes that poll return immediately — harmless.)
            self.pipe.drain();
            self.waker.armed.store(false, Ordering::Release);
            // An idle session pins the current epoch, which would stall
            // flushes and evictions store-wide — and with them any sibling
            // worker stuck waiting on an allocation. Refresh every pass.
            self.session.refresh();
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }

            while let Ok(stream) = self.incoming.try_recv() {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let id = self.next_conn;
                self.next_conn += 1;
                self.conns.insert(id, Conn::new(stream));
            }

            for (i, pfd) in pfds.iter().enumerate().skip(1) {
                if pfd.revents & (POLLIN | POLLHUP | POLLERR) != 0 {
                    if let Some(c) = self.conns.get_mut(&slots[i - 1]) {
                        c.fill();
                    }
                }
            }

            let ids: Vec<u64> = self.conns.keys().copied().collect();
            for &id in &ids {
                if let Some(c) = self.conns.get_mut(&id) {
                    c.parse_input();
                }
                self.execute_queued(id);
            }

            // One non-blocking pass drives continuations and reaps both I/O
            // completions and WAL durability CQEs off the session ring.
            let done = self.session.complete_pending(false);
            for comp in done {
                self.resolve(comp.id, comp.result);
            }
            self.collect_wal_notices();
            // A resolved RMW may have unstalled a connection's queue.
            for &id in &ids {
                self.execute_queued(id);
            }

            let ids: Vec<u64> = self.conns.keys().copied().collect();
            for id in ids {
                if let Some(c) = self.conns.get_mut(&id) {
                    Self::emit_ready(c, &mut self.wal_refs, &self.wal_results);
                    c.flush();
                    if c.finished() {
                        let dead = self.conns.remove(&id).expect("present");
                        for r in &dead.replies {
                            if let Some(nid) = r.wal {
                                if let Some(n) = self.wal_refs.get_mut(&nid) {
                                    *n -= 1;
                                }
                            }
                        }
                    }
                }
            }
            self.gc_wal_entries();
        }
        self.session.clear_io_waker();
    }

    /// Drains a connection's command queue in **segments**, each one
    /// `execute_batch` call — this is where client pipelining becomes
    /// batched execution. A segment ends either when the queue runs dry or
    /// just after an `INCR`: its read-back must observe the store *before*
    /// any later pipelined command applies, so the rest of the window waits
    /// for the next segment. An `INCR` whose RMW went pending stalls the
    /// queue entirely until its continuation applies (see
    /// [`Conn::stall_seq`]).
    fn execute_queued(&mut self, conn_id: u64) {
        loop {
            let Some(c) = self.conns.get_mut(&conn_id) else { return };
            if c.broken || c.stall_seq.is_some() {
                return;
            }
            if c.queued.is_empty() {
                if let Some(msg) = c.poisoned.take() {
                    let mut b = Vec::new();
                    resp::error(&mut b, &msg);
                    c.replies.push_back(Reply::ready(b));
                }
                return;
            }
            let mut batch: Vec<BatchOp<u64, u64, u64>> = Vec::new();
            // (reply seq, command) for each batched op, positionally
            // matching `batch`'s outcomes.
            let mut batched: Vec<(u64, Command)> = Vec::new();
            while let Some(cmd) = c.queued.pop_front() {
                let seq = c.next_seq();
                match cmd {
                    Command::Ping => {
                        let mut b = Vec::new();
                        resp::simple(&mut b, "PONG");
                        c.replies.push_back(Reply::ready(b));
                    }
                    Command::Quit => {
                        let mut b = Vec::new();
                        resp::simple(&mut b, "OK");
                        c.replies.push_back(Reply::ready(b));
                    }
                    Command::Bad(msg) => {
                        let mut b = Vec::new();
                        resp::error(&mut b, &format!("ERR {msg}"));
                        c.replies.push_back(Reply::ready(b));
                    }
                    Command::Get(k) => {
                        batch.push(BatchOp::Read { key: k, input: 0 });
                        batched.push((seq, Command::Get(k)));
                        c.replies.push_back(Reply::ready(Vec::new()));
                    }
                    Command::Set(k, v) => {
                        batch.push(BatchOp::Upsert { key: k, value: v });
                        batched.push((seq, Command::Set(k, v)));
                        c.replies.push_back(Reply::ready(Vec::new()));
                    }
                    Command::Del(k) => {
                        batch.push(BatchOp::Delete { key: k });
                        batched.push((seq, Command::Del(k)));
                        c.replies.push_back(Reply::ready(Vec::new()));
                    }
                    Command::Incr(k, n) => {
                        batch.push(BatchOp::Rmw { key: k, input: n });
                        batched.push((seq, Command::Incr(k, n)));
                        c.replies.push_back(Reply::ready(Vec::new()));
                        break; // segment boundary: read-back comes first
                    }
                }
            }
            if batch.is_empty() {
                continue; // only immediate commands this pass; re-check
            }

            let outcomes = self.session.execute_batch(&batch);
            // Mutations that applied in this segment share one durability
            // gate: the notice registered below covers the session's last
            // appended LSN, which is ≥ every append the segment made.
            let mut wal_gated: Vec<u64> = Vec::new();
            for ((seq, cmd), outcome) in batched.into_iter().zip(outcomes) {
                self.fill_reply(conn_id, seq, cmd, outcome, &mut wal_gated);
            }
            if !wal_gated.is_empty() {
                if let Some(nid) = self.session.notify_wal_durable() {
                    let c = self.conns.get_mut(&conn_id).expect("conn present");
                    for seq in wal_gated {
                        if let Some(r) = c.reply_mut(seq) {
                            r.wal = Some(nid);
                            *self.wal_refs.entry(nid).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
    }

    /// Renders one batch outcome into its reply slot (or parks it pending).
    fn fill_reply(
        &mut self,
        conn_id: u64,
        seq: u64,
        cmd: Command,
        outcome: Result<Outcome<u64>, OpError>,
        wal_gated: &mut Vec<u64>,
    ) {
        // INCR's sync read-back touches the session, so compute it before
        // borrowing the reply slot.
        let incr_value = match (&cmd, &outcome) {
            (Command::Incr(k, _), Ok(Outcome::Done)) => Some(self.read_back(*k)),
            _ => None,
        };
        let Some(c) = self.conns.get_mut(&conn_id) else { return };
        let Some(reply) = c.reply_mut(seq) else { return };
        match cmd {
            Command::Get(_) => match outcome {
                Ok(Outcome::Value(v)) => resp::bulk_u64(&mut reply.bytes, v),
                Err(OpError::NotFound) => resp::nil(&mut reply.bytes),
                Err(OpError::Pending(id)) => {
                    reply.op = Some(PendingOp::Read { render: Render::Value });
                    self.ops.insert(id, (conn_id, seq));
                }
                Err(OpError::Io(e)) => resp::error(&mut reply.bytes, &format!("ERR io: {e}")),
                Err(e) => render_unexpected(&mut reply.bytes, &e),
                Ok(Outcome::Done) => resp::error(&mut reply.bytes, "ERR internal: valueless read"),
            },
            Command::Set(..) => match outcome {
                Ok(_) => {
                    resp::simple(&mut reply.bytes, "OK");
                    wal_gated.push(seq);
                }
                Err(e) => render_unexpected(&mut reply.bytes, &e),
            },
            Command::Del(_) => match outcome {
                Ok(_) => {
                    resp::integer(&mut reply.bytes, 1);
                    wal_gated.push(seq);
                }
                Err(e) => render_unexpected(&mut reply.bytes, &e),
            },
            Command::Incr(k, _) => match outcome {
                Ok(_) => {
                    match incr_value.expect("computed above") {
                        ReadBack::Value(v) => resp::integer(&mut reply.bytes, v),
                        ReadBack::Pending(id) => {
                            reply.op = Some(PendingOp::Read { render: Render::Int });
                            self.ops.insert(id, (conn_id, seq));
                        }
                        ReadBack::Failed(msg) => resp::error(&mut reply.bytes, &msg),
                    }
                    wal_gated.push(seq);
                }
                Err(OpError::Pending(id)) => {
                    reply.op = Some(PendingOp::RmwThenRead { key: k });
                    // Nothing behind this command may execute until the RMW
                    // applies, or the connection's serial order inverts.
                    c.stall_seq = Some(seq);
                    self.ops.insert(id, (conn_id, seq));
                }
                Err(e) => render_unexpected(&mut reply.bytes, &e),
            },
            Command::Ping | Command::Quit | Command::Bad(_) => unreachable!("never batched"),
        }
    }

    /// Reads the post-RMW value for an `INCR` reply.
    fn read_back(&self, key: u64) -> ReadBack {
        match self.session.read(&key, &0) {
            Ok(Outcome::Value(v)) => ReadBack::Value(v),
            Err(OpError::Pending(id)) => ReadBack::Pending(id),
            Err(OpError::NotFound) => {
                // The RMW applied, so only a racing DEL can make the key
                // vanish before the read-back.
                ReadBack::Failed("ERR key deleted during INCR".into())
            }
            Err(OpError::Io(e)) => ReadBack::Failed(format!("ERR io: {e}")),
            Err(OpError::ReadOnly(r)) => ReadBack::Failed(format!("READONLY {r}")),
            Ok(Outcome::Done) => ReadBack::Failed("ERR internal: valueless read".into()),
        }
    }

    /// Routes a completed pending op back into the reply it renders.
    fn resolve(&mut self, id: u64, result: Result<Outcome<u64>, OpError>) {
        let Some((conn_id, seq)) = self.ops.remove(&id) else { return };
        let Some(c) = self.conns.get_mut(&conn_id) else { return };
        let Some(reply) = c.reply_mut(seq) else { return };
        let Some(pending) = reply.op.take() else { return };
        match pending {
            PendingOp::Read { render } => match (result, render) {
                (Ok(Outcome::Value(v)), Render::Value) => resp::bulk_u64(&mut reply.bytes, v),
                (Ok(Outcome::Value(v)), Render::Int) => resp::integer(&mut reply.bytes, v),
                (Err(OpError::NotFound), Render::Value) => resp::nil(&mut reply.bytes),
                (Err(OpError::NotFound), Render::Int) => {
                    resp::error(&mut reply.bytes, "ERR key deleted during INCR");
                }
                (Err(OpError::Io(e)), _) => {
                    resp::error(&mut reply.bytes, &format!("ERR io: {e}"));
                }
                (other, _) => {
                    let e = other.err().unwrap_or(OpError::NotFound);
                    render_unexpected(&mut reply.bytes, &e);
                }
            },
            PendingOp::RmwThenRead { key } => match result {
                Ok(Outcome::Done) => {
                    // The RMW has now applied (and appended to the WAL):
                    // register its durability gate, then read the value back.
                    if let Some(nid) = self.session.notify_wal_durable() {
                        reply.wal = Some(nid);
                        *self.wal_refs.entry(nid).or_insert(0) += 1;
                    }
                    match self.read_back(key) {
                        ReadBack::Value(v) => {
                            // Re-borrow: read_back needed `&self.session`.
                            let c = self.conns.get_mut(&conn_id).expect("present");
                            let reply = c.reply_mut(seq).expect("present");
                            resp::integer(&mut reply.bytes, v);
                        }
                        ReadBack::Pending(id2) => {
                            let c = self.conns.get_mut(&conn_id).expect("present");
                            let reply = c.reply_mut(seq).expect("present");
                            reply.op = Some(PendingOp::Read { render: Render::Int });
                            self.ops.insert(id2, (conn_id, seq));
                        }
                        ReadBack::Failed(msg) => {
                            let c = self.conns.get_mut(&conn_id).expect("present");
                            let reply = c.reply_mut(seq).expect("present");
                            resp::error(&mut reply.bytes, &msg);
                        }
                    }
                }
                Err(OpError::Io(e)) => resp::error(&mut reply.bytes, &format!("ERR io: {e}")),
                other => {
                    let e = other.err().unwrap_or(OpError::NotFound);
                    render_unexpected(&mut reply.bytes, &e);
                }
            },
        }
        // The RMW has applied (or failed for good): later commands may run.
        // A still-pending *read-back* does not re-stall — parked reads
        // resolve against the record version captured at issue time, so
        // later writes cannot leak into this reply.
        if let Some(c) = self.conns.get_mut(&conn_id) {
            if c.stall_seq == Some(seq) {
                c.stall_seq = None;
            }
        }
    }

    /// Pulls resolved durability notices out of the session.
    fn collect_wal_notices(&mut self) {
        let unresolved: Vec<u64> = self
            .wal_refs
            .keys()
            .filter(|id| !self.wal_results.contains_key(id))
            .copied()
            .collect();
        for id in unresolved {
            if let Some(r) = self.session.take_wal_notice(id) {
                self.wal_results.insert(id, r);
            }
        }
    }

    /// Emits the resolved prefix of a connection's reply queue, consuming
    /// durability gates as it goes. A failed group commit turns the gated
    /// reply into `-READONLY` — the mutation was applied in memory but its
    /// durability contract is broken, and the store has already degraded.
    fn emit_ready(
        c: &mut Conn,
        wal_refs: &mut HashMap<u64, usize>,
        wal_results: &HashMap<u64, Result<(), IoError>>,
    ) {
        while let Some(front) = c.replies.front() {
            if front.op.is_some() {
                break;
            }
            if let Some(nid) = front.wal {
                match wal_results.get(&nid) {
                    None => break,
                    Some(Ok(())) => {}
                    Some(Err(e)) => {
                        let front = c.replies.front_mut().expect("checked");
                        front.bytes.clear();
                        resp::error(&mut front.bytes, &format!("READONLY wal failed: {e}"));
                    }
                }
                if let Some(n) = wal_refs.get_mut(&nid) {
                    *n -= 1;
                }
            }
            let reply = c.replies.pop_front().expect("checked");
            c.seq_base += 1;
            c.outbuf.extend_from_slice(&reply.bytes);
        }
    }

    /// Drops durability bookkeeping nothing references anymore.
    fn gc_wal_entries(&mut self) {
        let dead: Vec<u64> = self
            .wal_refs
            .iter()
            .filter(|(id, n)| **n == 0 && self.wal_results.contains_key(id))
            .map(|(id, _)| *id)
            .collect();
        for id in dead {
            self.wal_refs.remove(&id);
            self.wal_results.remove(&id);
        }
    }
}

enum ReadBack {
    Value(u64),
    Pending(u64),
    Failed(String),
}

fn render_unexpected(out: &mut Vec<u8>, e: &OpError) {
    match e {
        OpError::ReadOnly(r) => resp::error(out, &format!("READONLY {r}")),
        other => resp::error(out, &format!("ERR internal: {other}")),
    }
}

// ------------------------------------------------------------------- server

/// Front-end tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker event-loop threads (one store session each).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: 2 }
    }
}

/// A running front-end. Dropping it (or calling [`Server::shutdown`])
/// stops the acceptor and workers and joins them.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    wakers: Vec<Arc<Waker>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting RESP connections against `store`.
    pub fn start(store: Store, addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers = cfg.workers.max(1);
        let mut handles = Vec::with_capacity(workers + 1);
        let mut wakers = Vec::with_capacity(workers);
        let mut senders = Vec::with_capacity(workers);
        for w in 0..workers {
            let (pipe, waker) = self_pipe()?;
            let (tx, rx) = mpsc::channel::<TcpStream>();
            let store = store.clone();
            let waker2 = waker.clone();
            let shutdown2 = shutdown.clone();
            handles.push(std::thread::Builder::new().name(format!("faster-resp-{w}")).spawn(
                move || {
                    // The session registers its thread with the epoch
                    // protector, so it is born on the worker, not moved in.
                    let worker = Worker {
                        session: store.start_session(),
                        pipe,
                        waker: waker2,
                        incoming: rx,
                        shutdown: shutdown2,
                        conns: HashMap::new(),
                        next_conn: 0,
                        ops: HashMap::new(),
                        wal_refs: HashMap::new(),
                        wal_results: HashMap::new(),
                    };
                    worker.run();
                },
            )?);
            wakers.push(waker);
            senders.push(tx);
        }
        {
            let shutdown = shutdown.clone();
            let wakers = wakers.clone();
            handles.push(
                std::thread::Builder::new().name("faster-resp-accept".into()).spawn(move || {
                    let mut next = 0usize;
                    loop {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if shutdown.load(Ordering::Acquire) {
                                    break;
                                }
                                let w = next % senders.len();
                                next += 1;
                                if senders[w].send(stream).is_ok() {
                                    wakers[w].wake();
                                }
                            }
                            Err(_) => {
                                if shutdown.load(Ordering::Acquire) {
                                    break;
                                }
                                // Transient accept failure (EMFILE, ...).
                                std::thread::sleep(Duration::from_millis(10));
                            }
                        }
                    }
                })?,
            );
        }
        Ok(Server { local_addr, shutdown, wakers, handles: Mutex::new(handles) })
    }

    /// The bound address — connect clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the acceptor and every worker, then joins them. Connections
    /// are dropped without draining; acked replies are already durable.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        for w in &self.wakers {
            w.wake();
        }
        // Unblock the acceptor's blocking `accept`.
        let _ = TcpStream::connect(self.local_addr);
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}
