//! RESP2 wire protocol: incremental frame parsing and reply encoding.
//!
//! The front-end speaks the Redis serialization protocol's client subset:
//! commands arrive either as arrays of bulk strings (`*2\r\n$3\r\nGET\r\n...`,
//! what every client library sends) or as space-separated inline commands
//! (`GET 42\r\n`, what a human in `nc` types). Parsing is incremental — a
//! frame split across TCP segments parses once the rest arrives — and
//! pipelining falls out naturally: every complete frame sitting in the
//! buffer is consumed in one pass, which is what the connection layer turns
//! into one `execute_batch` call.
//!
//! Errors are split by blast radius: [`ParseError::Protocol`] means the
//! stream itself is unframeable (desynchronized lengths, oversized frames)
//! and the connection must close after an `-ERR` reply; a bad argument
//! inside a well-formed frame is a per-command error and the stream keeps
//! going.

/// One decoded client command. Keys and values are decimal `u64`s — the
/// store under this front-end is the fixed-width `FasterKv<u64, u64, _>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    Get(u64),
    Set(u64, u64),
    Del(u64),
    /// `INCR key` / `INCRBY key n`: RMW-add through the store's CRDT path.
    Incr(u64, u64),
    Ping,
    Quit,
    /// Well-formed frame, unusable content: reply `-ERR ...`, keep the
    /// connection.
    Bad(String),
}

/// Stream-level failure: the connection cannot be resynchronized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

/// A frame no client legitimately sends: longer and the stream is treated
/// as garbage rather than buffered without bound.
const MAX_BULK: usize = 64 * 1024;
const MAX_ARGS: usize = 1024;
const MAX_INLINE: usize = 16 * 1024;

/// Outcome of one parse attempt against the front of the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// A frame decoded to a command; drop `usize` bytes and call again.
    Frame(Command, usize),
    /// A complete but command-less frame — a bare newline or a legal
    /// `*0\r\n` empty array. Redis ignores both silently: drop the bytes,
    /// produce no reply.
    Empty(usize),
    /// The buffer holds only a frame prefix; read more.
    Partial,
}

/// Tries to decode one complete command from the front of `buf`.
/// `Err(_)` means the stream is desynchronized; close after erroring.
pub fn parse(buf: &[u8]) -> Result<Parsed, ParseError> {
    let Some(&first) = buf.first() else { return Ok(Parsed::Partial) };
    if first == b'*' {
        parse_array(buf)
    } else {
        parse_inline(buf)
    }
}

/// Array-of-bulk-strings form: `*<n>\r\n` then `n` times `$<len>\r\n<len
/// bytes>\r\n`.
fn parse_array(buf: &[u8]) -> Result<Parsed, ParseError> {
    let Some((count, mut at)) = parse_int_line(buf, 1)? else { return Ok(Parsed::Partial) };
    if count < 0 || count as usize > MAX_ARGS {
        return Err(ParseError(format!("invalid multibulk length {count}")));
    }
    if count == 0 {
        return Ok(Parsed::Empty(at));
    }
    let mut args: Vec<&[u8]> = Vec::with_capacity(count as usize);
    for _ in 0..count {
        if at >= buf.len() {
            return Ok(Parsed::Partial);
        }
        if buf[at] != b'$' {
            return Err(ParseError("expected bulk string ($)".into()));
        }
        let Some((len, data_at)) = parse_int_line(buf, at + 1)? else {
            return Ok(Parsed::Partial);
        };
        if len < 0 || len as usize > MAX_BULK {
            return Err(ParseError(format!("invalid bulk length {len}")));
        }
        let end = data_at + len as usize;
        if buf.len() < end + 2 {
            return Ok(Parsed::Partial);
        }
        if &buf[end..end + 2] != b"\r\n" {
            return Err(ParseError("bulk string missing terminator".into()));
        }
        args.push(&buf[data_at..end]);
        at = end + 2;
    }
    Ok(Parsed::Frame(decode(&args), at))
}

/// Inline form: one CRLF-terminated line of space-separated tokens.
fn parse_inline(buf: &[u8]) -> Result<Parsed, ParseError> {
    let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
        if buf.len() > MAX_INLINE {
            return Err(ParseError("inline command too long".into()));
        }
        return Ok(Parsed::Partial);
    };
    let line = &buf[..nl];
    let line = line.strip_suffix(b"\r").unwrap_or(line);
    let args: Vec<&[u8]> = line.split(|&b| b == b' ').filter(|t| !t.is_empty()).collect();
    if args.is_empty() {
        return Ok(Parsed::Empty(nl + 1));
    }
    Ok(Parsed::Frame(decode(&args), nl + 1))
}

/// `<digits>\r\n` starting at `from`; returns the value and the offset just
/// past the CRLF.
fn parse_int_line(buf: &[u8], from: usize) -> Result<Option<(i64, usize)>, ParseError> {
    let Some(rel) = buf[from.min(buf.len())..].iter().position(|&b| b == b'\n') else {
        if buf.len() - from.min(buf.len()) > 32 {
            return Err(ParseError("length line too long".into()));
        }
        return Ok(None);
    };
    let nl = from + rel;
    if nl == from || buf[nl - 1] != b'\r' {
        return Err(ParseError("length line missing CR".into()));
    }
    let digits = &buf[from..nl - 1];
    let s = std::str::from_utf8(digits).map_err(|_| ParseError("non-ASCII length".into()))?;
    let v: i64 = s.parse().map_err(|_| ParseError(format!("invalid length {s:?}")))?;
    Ok(Some((v, nl + 1)))
}

/// Maps a tokenized frame to a [`Command`]. Content errors (wrong arity,
/// non-numeric key) stay inside the frame: the stream is still synchronized.
fn decode(args: &[&[u8]]) -> Command {
    // Callers filter empty frames out before decoding; never index blind.
    let Some(first) = args.first() else { return Command::Bad("empty command".into()) };
    let name = first.to_ascii_uppercase();
    let int = |arg: &[u8]| -> Result<u64, Command> {
        std::str::from_utf8(arg)
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| Command::Bad("value is not an integer or out of range".into()))
    };
    let arity = |want: usize| -> Option<Command> {
        (args.len() != want + 1).then(|| {
            Command::Bad(format!(
                "wrong number of arguments for '{}' command",
                String::from_utf8_lossy(&name).to_lowercase()
            ))
        })
    };
    macro_rules! get {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(bad) => return bad,
            }
        };
    }
    match name.as_slice() {
        b"PING" => Command::Ping,
        b"QUIT" => Command::Quit,
        b"GET" => arity(1).unwrap_or_else(|| Command::Get(get!(int(args[1])))),
        b"SET" => arity(2).unwrap_or_else(|| Command::Set(get!(int(args[1])), get!(int(args[2])))),
        b"DEL" => arity(1).unwrap_or_else(|| Command::Del(get!(int(args[1])))),
        b"INCR" => arity(1).unwrap_or_else(|| Command::Incr(get!(int(args[1])), 1)),
        b"INCRBY" => {
            arity(2).unwrap_or_else(|| Command::Incr(get!(int(args[1])), get!(int(args[2]))))
        }
        other => Command::Bad(format!(
            "unknown command '{}'",
            String::from_utf8_lossy(other).to_lowercase()
        )),
    }
}

// ------------------------------------------------------------- reply encode

/// `+<msg>\r\n`
pub fn simple(out: &mut Vec<u8>, msg: &str) {
    out.push(b'+');
    out.extend_from_slice(msg.as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// `-<msg>\r\n`
pub fn error(out: &mut Vec<u8>, msg: &str) {
    out.push(b'-');
    // CR/LF inside an error message would desynchronize the stream.
    out.extend(msg.bytes().map(|b| if b == b'\r' || b == b'\n' { b' ' } else { b }));
    out.extend_from_slice(b"\r\n");
}

/// `:<n>\r\n`
pub fn integer(out: &mut Vec<u8>, n: u64) {
    out.push(b':');
    out.extend_from_slice(n.to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// `$<len>\r\n<decimal n>\r\n` — values are served as bulk strings, the way
/// Redis serves integer-looking values.
pub fn bulk_u64(out: &mut Vec<u8>, n: u64) {
    let s = n.to_string();
    out.push(b'$');
    out.extend_from_slice(s.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(s.as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// `$-1\r\n` — the RESP2 nil bulk (key absent).
pub fn nil(out: &mut Vec<u8>) {
    out.extend_from_slice(b"$-1\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(buf: &[u8]) -> (Command, usize) {
        match parse(buf).expect("parse ok") {
            Parsed::Frame(cmd, n) => (cmd, n),
            other => panic!("expected a command frame, got {other:?}"),
        }
    }

    #[test]
    fn inline_commands_parse() {
        assert_eq!(one(b"GET 42\r\n"), (Command::Get(42), 8));
        assert_eq!(one(b"set 1 2\r\n").0, Command::Set(1, 2));
        assert_eq!(one(b"DEL 7\n").0, Command::Del(7));
        assert_eq!(one(b"INCR 3\r\n").0, Command::Incr(3, 1));
        assert_eq!(one(b"INCRBY 3 9\r\n").0, Command::Incr(3, 9));
        assert_eq!(one(b"PING\r\n").0, Command::Ping);
    }

    #[test]
    fn array_commands_parse() {
        let frame = b"*3\r\n$3\r\nSET\r\n$2\r\n10\r\n$2\r\n20\r\n";
        assert_eq!(one(frame), (Command::Set(10, 20), frame.len()));
        let frame = b"*2\r\n$3\r\nGET\r\n$1\r\n5\r\n";
        assert_eq!(one(frame), (Command::Get(5), frame.len()));
    }

    #[test]
    fn partial_frames_wait_for_more() {
        let frame = b"*3\r\n$3\r\nSET\r\n$2\r\n10\r\n$2\r\n20\r\n";
        for cut in 0..frame.len() {
            assert_eq!(parse(&frame[..cut]).unwrap(), Parsed::Partial, "cut={cut}");
        }
    }

    #[test]
    fn empty_frames_are_consumed_silently() {
        // A legal empty array must not reach decode() (it used to panic
        // at args[0] and kill the worker) and must produce no reply.
        assert_eq!(parse(b"*0\r\n").unwrap(), Parsed::Empty(4));
        assert_eq!(parse(b"*0\r\nGET 1\r\n").unwrap(), Parsed::Empty(4));
        // Bare newlines likewise: Redis ignores empty inline commands, so
        // no synthesized PING/PONG that would shift reply pairing.
        assert_eq!(parse(b"\r\n").unwrap(), Parsed::Empty(2));
        assert_eq!(parse(b"\n").unwrap(), Parsed::Empty(1));
        assert_eq!(parse(b"   \r\n").unwrap(), Parsed::Empty(5));
        // The command behind a skipped frame still parses.
        let buf = b"*0\r\nGET 4\r\n";
        let Parsed::Empty(n) = parse(buf).unwrap() else { panic!("expected empty") };
        assert_eq!(one(&buf[n..]).0, Command::Get(4));
    }

    #[test]
    fn pipelined_frames_consume_one_at_a_time() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"*3\r\n$3\r\nSET\r\n$1\r\n1\r\n$1\r\n9\r\n");
        buf.extend_from_slice(b"GET 1\r\n");
        let (c1, n1) = one(&buf);
        assert_eq!(c1, Command::Set(1, 9));
        let (c2, n2) = one(&buf[n1..]);
        assert_eq!(c2, Command::Get(1));
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn content_errors_keep_the_stream() {
        assert!(matches!(one(b"GET abc\r\n").0, Command::Bad(_)));
        assert!(matches!(one(b"NOPE 1\r\n").0, Command::Bad(_)));
        assert!(matches!(one(b"GET 1 2\r\n").0, Command::Bad(_)));
        // The next frame after a Bad still parses.
        let buf = b"GET abc\r\nGET 4\r\n";
        let (_, n) = one(buf);
        assert_eq!(one(&buf[n..]).0, Command::Get(4));
    }

    #[test]
    fn protocol_errors_poison_the_stream() {
        assert!(parse(b"*x\r\n").is_err());
        assert!(parse(b"*2\r\nX3\r\nGET\r\n").is_err());
        assert!(parse(b"*1\r\n$99999999\r\n").is_err());
        assert!(parse(b"*-5\r\n").is_err());
    }

    #[test]
    fn encoders_round_trip_shapes() {
        let mut out = Vec::new();
        simple(&mut out, "OK");
        integer(&mut out, 7);
        bulk_u64(&mut out, 123);
        nil(&mut out);
        error(&mut out, "ERR bad\r\nthing");
        assert_eq!(
            out,
            b"+OK\r\n:7\r\n$3\r\n123\r\n$-1\r\n-ERR bad  thing\r\n".to_vec()
        );
    }
}
