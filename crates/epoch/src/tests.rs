//! Unit and concurrency tests for the epoch framework.

use super::*;
use std::sync::atomic::{AtomicBool, AtomicU32};
use std::sync::Barrier;
use std::thread;

#[test]
fn fresh_state() {
    let e = Epoch::new(4);
    assert_eq!(e.current(), 1);
    assert_eq!(e.active_threads(), 0);
    assert_eq!(e.pending_actions(), 0);
}

#[test]
fn acquire_refresh_release() {
    let e = Epoch::new(4);
    let g = e.acquire();
    assert_eq!(e.active_threads(), 1);
    assert_eq!(g.protected_epoch(), 1);
    e.bump();
    assert_eq!(e.current(), 2);
    assert_eq!(g.protected_epoch(), 1, "refresh has not run yet");
    g.refresh();
    assert_eq!(g.protected_epoch(), 2);
    drop(g);
    assert_eq!(e.active_threads(), 0);
}

#[test]
fn safety_semantics() {
    let e = Epoch::new(4);
    let g = e.acquire(); // E_T = 1
    let c = e.bump(); // E: 1 -> 2, returns 1
    assert_eq!(c, 1);
    assert!(!e.is_safe(1), "guard still at epoch 1");
    g.refresh(); // E_T = 2
    assert!(e.is_safe(1), "all active threads above 1");
    assert!(!e.is_safe(2));
    drop(g);
    assert!(e.is_safe(1));
}

#[test]
fn trigger_runs_after_all_threads_pass() {
    let e = Epoch::new(4);
    let g1 = e.acquire();
    let g2 = e.acquire();
    let fired = std::sync::Arc::new(AtomicBool::new(false));
    let f = fired.clone();
    e.bump_with(move || f.store(true, Ordering::SeqCst));
    assert!(!fired.load(Ordering::SeqCst));
    g1.refresh();
    assert!(!fired.load(Ordering::SeqCst), "g2 still in old epoch");
    g2.refresh();
    assert!(fired.load(Ordering::SeqCst), "both threads crossed the bump");
}

#[test]
fn trigger_runs_immediately_without_threads() {
    let e = Epoch::new(4);
    let fired = std::sync::Arc::new(AtomicBool::new(false));
    let f = fired.clone();
    e.bump_with(move || f.store(true, Ordering::SeqCst));
    assert!(fired.load(Ordering::SeqCst), "no active threads => instantly safe");
}

#[test]
fn trigger_fires_on_guard_drop() {
    let e = Epoch::new(4);
    let g = e.acquire();
    let fired = std::sync::Arc::new(AtomicBool::new(false));
    let f = fired.clone();
    e.bump_with(move || f.store(true, Ordering::SeqCst));
    assert!(!fired.load(Ordering::SeqCst));
    drop(g); // departure of the last laggard must not strand the action
    assert!(fired.load(Ordering::SeqCst));
}

#[test]
fn drain_all_flushes_everything() {
    let e = Epoch::new(4);
    let n = std::sync::Arc::new(AtomicU32::new(0));
    {
        let g = e.acquire();
        for _ in 0..10 {
            let n = n.clone();
            e.bump_with(move || {
                n.fetch_add(1, Ordering::SeqCst);
            });
        }
        // g never refreshes, so nothing fired yet.
        assert_eq!(n.load(Ordering::SeqCst), 0);
        drop(g);
    }
    e.drain_all();
    assert_eq!(n.load(Ordering::SeqCst), 10);
}

#[test]
#[should_panic(expected = "drain_all with active guards")]
fn drain_all_rejects_active_guards() {
    let e = Epoch::new(4);
    let _g = e.acquire();
    e.drain_all();
}

#[test]
fn invariant_es_lt_et_le_e_under_concurrency() {
    let e = Epoch::new(16);
    let stop = std::sync::Arc::new(AtomicBool::new(false));
    let barrier = std::sync::Arc::new(Barrier::new(9));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let e = e.clone();
        let stop = stop.clone();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            let g = e.acquire();
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                g.refresh();
                let et = g.protected_epoch();
                let es = e.safe();
                let cur = e.current();
                assert!(es < et, "E_s ({es}) must be < E_T ({et})");
                assert!(et <= cur, "E_T ({et}) must be <= E ({cur})");
                if et.is_multiple_of(7) {
                    e.bump();
                }
            }
        }));
    }
    barrier.wait();
    thread::sleep(std::time::Duration::from_millis(200));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn canonical_active_now_example() {
    // §2.4: update a shared `status` and run `active-now` only after all
    // threads have observed it.
    let e = Epoch::new(8);
    let status_active = std::sync::Arc::new(AtomicBool::new(false));
    let callback_ran = std::sync::Arc::new(AtomicBool::new(false));
    let num_threads = 4;
    let barrier = std::sync::Arc::new(Barrier::new(num_threads + 1));
    let stop = std::sync::Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for _ in 0..num_threads {
        let e = e.clone();
        let status = status_active.clone();
        let ran = callback_ran.clone();
        let barrier = barrier.clone();
        let stop = stop.clone();
        handles.push(thread::spawn(move || {
            let g = e.acquire();
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                // If the callback has run, every thread must see status set:
                if ran.load(Ordering::SeqCst) {
                    assert!(status.load(Ordering::SeqCst));
                }
                g.refresh();
            }
        }));
    }
    barrier.wait();
    status_active.store(true, Ordering::SeqCst);
    let ran = callback_ran.clone();
    e.bump_with(move || ran.store(true, Ordering::SeqCst));
    // Eventually all threads refresh and the callback fires.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !callback_ran.load(Ordering::SeqCst) {
        assert!(std::time::Instant::now() < deadline, "trigger never fired");
        std::hint::spin_loop();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn many_triggers_exactly_once_under_contention() {
    let e = Epoch::new(16);
    let count = std::sync::Arc::new(AtomicU32::new(0));
    let total_bumps = 2_000u32;
    let num_threads = 8;
    let barrier = std::sync::Arc::new(Barrier::new(num_threads));
    let mut handles = Vec::new();
    for _ in 0..num_threads {
        let e = e.clone();
        let count = count.clone();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            let g = e.acquire();
            barrier.wait();
            for i in 0..(total_bumps / num_threads as u32) {
                let c = count.clone();
                // Guard-aware bump: full drain list cannot deadlock on our
                // own stale epoch.
                g.bump_with(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
                if i % 4 == 0 {
                    g.refresh();
                }
            }
            drop(g);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    e.drain_all();
    assert_eq!(count.load(Ordering::SeqCst), total_bumps);
}

#[test]
fn guard_slots_are_reused_across_threads() {
    let e = Epoch::new(2);
    for _ in 0..100 {
        let g1 = e.acquire();
        let g2 = e.acquire();
        drop(g1);
        drop(g2);
    }
    assert_eq!(e.active_threads(), 0);
}

#[test]
fn drive_fires_actions_without_a_guard() {
    let e = Epoch::new(4);
    let fired = Arc::new(AtomicU32::new(0));
    // While a stale guard is alive, drive() must NOT fire the action.
    let g = e.acquire();
    let f = fired.clone();
    e.bump_with(move || {
        f.fetch_add(1, Ordering::SeqCst);
    });
    e.drive();
    assert_eq!(fired.load(Ordering::SeqCst), 0, "stale guard keeps action unsafe");
    drop(g); // drop itself drains — first action fires here
    assert_eq!(fired.load(Ordering::SeqCst), 1);
    // With no guards at all, a bumped action is drained by a guardless
    // drive() (the sessionless-resize wait-loop scenario).
    let f = fired.clone();
    e.bump_with(move || {
        f.fetch_add(1, Ordering::SeqCst);
    });
    e.drive();
    assert_eq!(fired.load(Ordering::SeqCst), 2);
}
