//! # faster-epoch
//!
//! The epoch-protection framework of FASTER (§2.3–§2.4), extended with
//! *trigger actions*: a generic building block for lazy synchronization over
//! arbitrary global changes.
//!
//! ## Model
//!
//! The system keeps a shared atomic counter `E` (the *current epoch*). Every
//! participating thread `T` holds a thread-local copy `E_T` in a shared epoch
//! table, one cache line per thread. An epoch `c` is **safe** when every
//! active thread has a strictly higher local value (`∀T: E_T > c`); once safe,
//! `c` stays safe forever. A global counter `E_s` tracks the maximal safe
//! epoch, and the invariant `E_s < E_T ≤ E` holds for all active threads.
//!
//! A thread interacts with the framework through four operations (§2.4):
//!
//! * [`Epoch::acquire`] — reserve an epoch-table entry and set `E_T = E`;
//! * [`EpochGuard::refresh`] — update `E_T = E`, recompute `E_s`, and run any
//!   drain-list actions that became safe;
//! * [`Epoch::bump_with`] — increment `E` from `c` to `c+1` and register an
//!   action to run once epoch `c` is safe;
//! * dropping the [`EpochGuard`] — release the entry (*Release*).
//!
//! The **drain list** is a small fixed array of `(epoch, action)` pairs. It is
//! scanned only when the safe epoch actually advances, and a compare-and-swap
//! on the epoch word of each slot guarantees each action runs *exactly once*
//! even under concurrent refreshes.
//!
//! ## Why this is enough for in-place updates
//!
//! A FASTER thread has guaranteed access to the memory behind any address it
//! read, as long as it does not refresh its epoch (§4). Everything that
//! invalidates memory — page eviction, record free, index chunk swap — is
//! deferred through a trigger action, which by construction runs only after
//! every thread has moved past the epoch in which the invalidation was
//! announced.
//!
//! ```
//! use faster_epoch::Epoch;
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicBool, Ordering};
//!
//! let epoch = Epoch::new(8);
//! let guard = epoch.acquire();
//! let fired = Arc::new(AtomicBool::new(false));
//! let f = fired.clone();
//! epoch.bump_with(move || f.store(true, Ordering::SeqCst));
//! // Not yet safe: this thread still sits in the pre-bump epoch.
//! assert!(!fired.load(Ordering::SeqCst));
//! guard.refresh(); // moves us forward; prior epoch becomes safe; action runs
//! assert!(fired.load(Ordering::SeqCst));
//! ```

mod drain;
mod table;

pub use drain::DRAIN_LIST_SIZE;

use drain::DrainList;
use faster_metrics::EpochMetrics;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use table::EpochTable;

/// The shared epoch state: current epoch, safe epoch, epoch table, drain list.
///
/// Cheap to share (`Epoch` is a handle over an `Arc`d inner); one instance per
/// store. All methods are safe to call from any thread.
#[derive(Clone)]
pub struct Epoch {
    inner: Arc<Inner>,
}

struct Inner {
    /// Current epoch `E`. Starts at 1 so that 0 can mean "unprotected".
    current: faster_util::CacheAligned<AtomicU64>,
    /// Maximal safe epoch `E_s` (monotonic cache of `compute_safe`).
    safe: faster_util::CacheAligned<AtomicU64>,
    table: EpochTable,
    drain: DrainList,
    metrics: Arc<EpochMetrics>,
}

impl Epoch {
    /// Creates a framework instance supporting up to `max_threads` concurrent
    /// guards, with a private metrics group.
    pub fn new(max_threads: usize) -> Self {
        Self::with_metrics(max_threads, Arc::new(EpochMetrics::default()))
    }

    /// Like [`Epoch::new`], but events are recorded into the caller's shared
    /// metrics group (the store's registry).
    pub fn with_metrics(max_threads: usize, metrics: Arc<EpochMetrics>) -> Self {
        assert!(max_threads >= 1);
        Self {
            inner: Arc::new(Inner {
                current: faster_util::CacheAligned::new(AtomicU64::new(1)),
                safe: faster_util::CacheAligned::new(AtomicU64::new(0)),
                table: EpochTable::new(max_threads),
                drain: DrainList::new(),
                metrics,
            }),
        }
    }

    /// The metrics group this framework records into.
    pub fn metrics(&self) -> &Arc<EpochMetrics> {
        &self.inner.metrics
    }

    /// Current epoch `E`.
    #[inline]
    pub fn current(&self) -> u64 {
        self.inner.current.load(Ordering::SeqCst)
    }

    /// Last computed maximal safe epoch `E_s`.
    #[inline]
    pub fn safe(&self) -> u64 {
        self.inner.safe.load(Ordering::SeqCst)
    }

    /// Returns true if `epoch` is safe: every active thread has moved past it.
    ///
    /// Recomputes from the table (does not rely on the cached `E_s`).
    pub fn is_safe(&self, epoch: u64) -> bool {
        epoch <= self.compute_safe()
    }

    /// Number of threads currently holding a guard.
    pub fn active_threads(&self) -> usize {
        self.inner.table.active_count()
    }

    /// Reserves an epoch-table entry for the calling thread and protects it
    /// at the current epoch (§2.4 *Acquire*).
    ///
    /// # Panics
    ///
    /// Panics if more than `max_threads` guards are alive at once.
    pub fn acquire(&self) -> EpochGuard {
        let slot = self
            .inner
            .table
            .reserve(self.current())
            .expect("epoch table full: more concurrent threads than max_threads");
        EpochGuard { epoch: self.clone(), slot }
    }

    /// Increments the current epoch (§2.4 *BumpEpoch* without an action).
    ///
    /// Returns the *previous* epoch value `c`; callers may later test
    /// [`Epoch::is_safe`]`(c)`.
    pub fn bump(&self) -> u64 {
        self.inner.metrics.bumps.inc();
        self.inner.current.fetch_add(1, Ordering::SeqCst)
    }

    /// Increments the current epoch from `c` to `c + 1` and registers
    /// `action` to run exactly once, after epoch `c` becomes safe
    /// (§2.4 *BumpEpoch(Action)*).
    ///
    /// If the drain list is full, this call collaborates by draining ready
    /// actions until a slot frees up (matching the C++ implementation's
    /// spin-and-drain behaviour).
    pub fn bump_with<F>(&self, action: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.bump_with_inner(None, Box::new(action));
    }

    fn bump_with_inner(&self, caller_slot: Option<usize>, action: Box<dyn FnOnce() + Send>) {
        self.inner.metrics.bumps.inc();
        let prior = self.inner.current.fetch_add(1, Ordering::SeqCst);
        let mut boxed = action;
        loop {
            match self.inner.drain.try_push(prior, boxed) {
                Ok(()) => break,
                Err(returned) => {
                    boxed = returned;
                    // Help: advance our own entry (otherwise our stale epoch
                    // would keep every pending action unsafe — deadlock),
                    // then drain whatever became ready and retry.
                    if let Some(slot) = caller_slot {
                        let e = self.inner.current.load(Ordering::SeqCst);
                        self.inner.table.set(slot, e);
                    }
                    let safe = self.compute_safe();
                    self.update_safe_and_drain(safe);
                    std::hint::spin_loop();
                }
            }
        }
        // The action may already be safe (e.g. no other active threads).
        let safe = self.compute_safe();
        self.update_safe_and_drain(safe);
    }

    /// Recomputes the safe epoch from the table and runs any trigger actions
    /// that have become safe — without requiring the caller to hold a guard.
    ///
    /// Guarded threads get this for free from [`EpochGuard::refresh`]. A
    /// *guardless* waiter (e.g. a sessionless resize helper waiting for an
    /// epoch-gated phase flip) must still be able to drive pending actions:
    /// if every guard was dropped right after a `bump_with`, nobody is left
    /// to notice the epoch became safe, and the waiter would spin on a
    /// transition only it can trigger. Calling `drive()` in the wait loop
    /// closes that hole.
    pub fn drive(&self) {
        let safe = self.compute_safe();
        self.update_safe_and_drain(safe);
    }

    /// Number of registered-but-not-yet-run trigger actions.
    pub fn pending_actions(&self) -> usize {
        self.inner.drain.len()
    }

    /// Runs every remaining trigger action regardless of epoch safety.
    ///
    /// Only sound once no guard is alive (e.g. store shutdown).
    ///
    /// # Panics
    ///
    /// Panics if any guard is still active.
    pub fn drain_all(&self) {
        assert_eq!(self.active_threads(), 0, "drain_all with active guards");
        let ran = self.inner.drain.drain_up_to(u64::MAX);
        self.inner.metrics.drain_actions.add(ran as u64);
    }

    /// Scans the epoch table and returns the maximal safe epoch.
    fn compute_safe(&self) -> u64 {
        let e = self.inner.current.load(Ordering::SeqCst);
        // Epoch c is safe iff all active threads have E_T > c, so the maximal
        // safe epoch is min(E_T) - 1; if nobody is active, it is E - 1.
        let min = self.inner.table.min_active().unwrap_or(e);
        min - 1
    }

    /// Monotonically advances the cached `E_s` and triggers ready actions.
    fn update_safe_and_drain(&self, new_safe: u64) {
        self.inner.safe.fetch_max(new_safe, Ordering::SeqCst);
        if self.inner.drain.len() > 0 {
            let ran = self.inner.drain.drain_up_to(self.inner.safe.load(Ordering::SeqCst));
            if ran > 0 {
                self.inner.metrics.drain_actions.add(ran as u64);
            }
        }
    }
}

impl std::fmt::Debug for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Epoch")
            .field("current", &self.current())
            .field("safe", &self.safe())
            .field("active_threads", &self.active_threads())
            .field("pending_actions", &self.pending_actions())
            .finish()
    }
}

/// A thread's registration with the epoch framework (§2.4 *Acquire*..*Release*).
///
/// While a guard is alive and not refreshed, the owning thread may freely
/// dereference any epoch-protected memory it discovered: nothing announced for
/// reclamation after the guard's protected epoch can be freed. Dropping the
/// guard releases the table entry.
pub struct EpochGuard {
    epoch: Epoch,
    slot: usize,
}

impl EpochGuard {
    /// Updates this thread's entry to the current epoch, recomputes the safe
    /// epoch, and runs any trigger actions that became safe (§2.4 *Refresh*).
    pub fn refresh(&self) {
        self.epoch.inner.metrics.refreshes.inc();
        let e = self.epoch.inner.current.load(Ordering::SeqCst);
        self.epoch.inner.table.set(self.slot, e);
        let safe = self.epoch.compute_safe();
        self.epoch.update_safe_and_drain(safe);
    }

    /// Bumps the epoch with a trigger action, like [`Epoch::bump_with`], but
    /// safe to call from a protected thread even when the drain list is full:
    /// the retry loop refreshes *this* guard's entry so the caller's own stale
    /// epoch cannot deadlock the drain.
    ///
    /// Note that refreshing mid-operation forfeits this thread's guaranteed
    /// access to previously read epoch-protected memory; call this only at
    /// operation boundaries (which is where FASTER bumps epochs).
    pub fn bump_with<F>(&self, action: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.epoch.bump_with_inner(Some(self.slot), Box::new(action));
    }

    /// The epoch this guard currently protects.
    pub fn protected_epoch(&self) -> u64 {
        self.epoch.inner.table.get(self.slot)
    }

    /// The framework this guard belongs to.
    pub fn epoch(&self) -> &Epoch {
        &self.epoch
    }
}

impl Drop for EpochGuard {
    fn drop(&mut self) {
        self.epoch.inner.table.release(self.slot);
        // Our departure may have made epochs safe; propagate so that pending
        // actions are not stranded waiting for a thread that left.
        let safe = self.epoch.compute_safe();
        self.epoch.update_safe_and_drain(safe);
    }
}

impl std::fmt::Debug for EpochGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochGuard")
            .field("slot", &self.slot)
            .field("protected_epoch", &self.protected_epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests;
