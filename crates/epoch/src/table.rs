//! The shared epoch table: one cache-line entry per thread (§2.3).
//!
//! Entry states:
//! * `0` — free (no thread owns the slot);
//! * `e > 0` — owned, thread-local epoch value `E_T = e`.
//!
//! Ownership of a slot is claimed with a single compare-and-swap from `0`, so
//! acquisition is latch-free; once owned, only the owner stores into the slot
//! (plain atomic stores), and everyone may read it during safe-epoch scans.

use faster_util::CacheAligned;
use std::sync::atomic::{AtomicU64, Ordering};

const FREE: u64 = 0;

pub(crate) struct EpochTable {
    entries: Box<[CacheAligned<AtomicU64>]>,
}

impl EpochTable {
    pub fn new(max_threads: usize) -> Self {
        let entries = (0..max_threads)
            .map(|_| CacheAligned::new(AtomicU64::new(FREE)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self { entries }
    }

    /// Claims a free slot and protects it at `epoch`. Returns the slot index,
    /// or `None` when every slot is taken.
    pub fn reserve(&self, epoch: u64) -> Option<usize> {
        debug_assert!(epoch > FREE);
        for (i, e) in self.entries.iter().enumerate() {
            if e.load(Ordering::Relaxed) == FREE
                && e.compare_exchange(FREE, epoch, Ordering::SeqCst, Ordering::Relaxed).is_ok()
            {
                return Some(i);
            }
        }
        None
    }

    /// Owner-only: publish a new thread-local epoch value.
    #[inline]
    pub fn set(&self, slot: usize, epoch: u64) {
        debug_assert!(epoch > FREE);
        self.entries[slot].store(epoch, Ordering::SeqCst);
    }

    /// Read a slot's current value (0 when free).
    #[inline]
    pub fn get(&self, slot: usize) -> u64 {
        self.entries[slot].load(Ordering::SeqCst)
    }

    /// Owner-only: release the slot back to the free pool.
    #[inline]
    pub fn release(&self, slot: usize) {
        self.entries[slot].store(FREE, Ordering::SeqCst);
    }

    /// The minimum `E_T` over active threads, or `None` if no thread is
    /// active. This is the scan that computes the maximal safe epoch.
    pub fn min_active(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        for e in self.entries.iter() {
            let v = e.load(Ordering::SeqCst);
            if v != FREE {
                min = Some(min.map_or(v, |m| m.min(v)));
            }
        }
        min
    }

    /// Number of slots currently owned.
    pub fn active_count(&self) -> usize {
        self.entries.iter().filter(|e| e.load(Ordering::SeqCst) != FREE).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_cycle() {
        let t = EpochTable::new(2);
        let a = t.reserve(5).unwrap();
        let b = t.reserve(7).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.reserve(9), None, "table is full");
        assert_eq!(t.min_active(), Some(5));
        assert_eq!(t.active_count(), 2);
        t.release(a);
        assert_eq!(t.min_active(), Some(7));
        let c = t.reserve(9).unwrap();
        assert_eq!(c, a, "freed slot is reused");
    }

    #[test]
    fn min_active_empty() {
        let t = EpochTable::new(4);
        assert_eq!(t.min_active(), None);
        assert_eq!(t.active_count(), 0);
    }

    #[test]
    fn set_updates_min() {
        let t = EpochTable::new(4);
        let s = t.reserve(3).unwrap();
        t.set(s, 10);
        assert_eq!(t.min_active(), Some(10));
        assert_eq!(t.get(s), 10);
    }
}
