//! The drain list: `(epoch, action)` pairs awaiting epoch safety (§2.3).
//!
//! "It is implemented using a small array that is scanned for actions ready to
//! be triggered whenever `E_s` is updated. We use atomic compare-and-swap on
//! the array to ensure an action is executed exactly once."
//!
//! Each slot has an atomic epoch word acting as the slot's state machine:
//!
//! ```text
//!  FREE ──(CAS by pusher)──► RESERVED ──(store by pusher)──► epoch e
//!  epoch e ──(CAS by drainer when e ≤ safe)──► RESERVED ──► FREE
//! ```
//!
//! The closure itself lives in a `Mutex<Option<Box<dyn FnOnce>>>` beside the
//! word. The mutex is uncontended by construction — only the unique CAS winner
//! (pusher or drainer) touches the slot while it is `RESERVED` — and sits far
//! off the store's hot path, so a `std` mutex is the right tool.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Capacity of the drain list. The paper keeps this small; 256 comfortably
/// covers page-flush plus eviction plus checkpoint actions in flight at once.
pub const DRAIN_LIST_SIZE: usize = 256;

const FREE: u64 = u64::MAX;
const RESERVED: u64 = u64::MAX - 1;

type Action = Box<dyn FnOnce() + Send>;

struct Slot {
    /// `FREE`, `RESERVED`, or the epoch that must become safe.
    epoch: AtomicU64,
    action: Mutex<Option<Action>>,
}

pub(crate) struct DrainList {
    slots: Box<[Slot]>,
    /// Count of occupied slots, so refresh can skip scanning when empty.
    count: AtomicUsize,
}

impl DrainList {
    pub fn new() -> Self {
        let slots = (0..DRAIN_LIST_SIZE)
            .map(|_| Slot { epoch: AtomicU64::new(FREE), action: Mutex::new(None) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self { slots, count: AtomicUsize::new(0) }
    }

    /// Number of pending actions (approximate under concurrency).
    #[inline]
    pub fn len(&self) -> usize {
        self.count.load(Ordering::SeqCst)
    }

    /// Registers `action` to run once `epoch` is safe. Fails (returning the
    /// action back) when the list is full.
    pub fn try_push(&self, epoch: u64, action: Action) -> Result<(), Action> {
        debug_assert!(epoch < RESERVED);
        for slot in self.slots.iter() {
            if slot.epoch.load(Ordering::Relaxed) == FREE
                && slot
                    .epoch
                    .compare_exchange(FREE, RESERVED, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
            {
                *slot.action.lock().expect("drain slot poisoned") = Some(action);
                slot.epoch.store(epoch, Ordering::SeqCst);
                self.count.fetch_add(1, Ordering::SeqCst);
                return Ok(());
            }
        }
        Err(action)
    }

    /// Runs every action whose epoch is `≤ safe`, returning how many ran.
    /// Each action runs exactly once: claiming is a CAS from the stored
    /// epoch to `RESERVED`.
    pub fn drain_up_to(&self, safe: u64) -> usize {
        if self.len() == 0 {
            return 0;
        }
        let mut ran = 0;
        for slot in self.slots.iter() {
            let e = slot.epoch.load(Ordering::SeqCst);
            if e <= safe
                && e < RESERVED
                && slot.epoch.compare_exchange(e, RESERVED, Ordering::SeqCst, Ordering::Relaxed).is_ok()
            {
                let action =
                    slot.action.lock().expect("drain slot poisoned").take().expect("claimed slot has action");
                slot.epoch.store(FREE, Ordering::SeqCst);
                self.count.fetch_sub(1, Ordering::SeqCst);
                action();
                ran += 1;
            }
        }
        ran
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn push_and_drain_in_epoch_order_threshold() {
        let list = DrainList::new();
        let hits = Arc::new(AtomicU32::new(0));
        for e in [3u64, 5, 7] {
            let h = hits.clone();
            list.try_push(e, Box::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }))
            .map_err(|_| ())
            .unwrap();
        }
        assert_eq!(list.len(), 3);
        list.drain_up_to(2);
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        list.drain_up_to(5);
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(list.len(), 1);
        list.drain_up_to(u64::MAX - 2);
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        assert_eq!(list.len(), 0);
    }

    #[test]
    fn full_list_rejects() {
        let list = DrainList::new();
        for _ in 0..DRAIN_LIST_SIZE {
            list.try_push(1, Box::new(|| {})).map_err(|_| ()).unwrap();
        }
        assert!(list.try_push(1, Box::new(|| {})).is_err());
        list.drain_up_to(1);
        assert!(list.try_push(1, Box::new(|| {})).is_ok());
    }

    #[test]
    fn exactly_once_under_concurrent_drain() {
        let list = Arc::new(DrainList::new());
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..64 {
            let h = hits.clone();
            list.try_push(1, Box::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }))
            .map_err(|_| ())
            .unwrap();
        }
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = list.clone();
                std::thread::spawn(move || l.drain_up_to(1))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 64, "each action ran exactly once");
    }
}
