//! # faster-maintenance
//!
//! Metrics-driven background maintenance (DESIGN.md §11). FASTER's index and
//! HybridLog only stay fast if somebody grows the index before probe chains
//! explode, compacts dead log space, sizes the read cache to the workload,
//! and checkpoints on cadence. This crate turns those operator jobs into a
//! service with two strictly separated halves:
//!
//! * [`Policy`] — a **pure, deterministic** tuning engine: feed it a
//!   [`StoreMetrics`] snapshot per tick, get back a `Vec<Action>`. No
//!   threads, no clocks, no store handle — every decision is replayable in a
//!   unit test or proptest from a scripted snapshot sequence. All four
//!   decisions carry hysteresis (distinct arm/disarm thresholds plus
//!   cooldown ticks) so adjacent snapshots can never make the policy flap
//!   between an action and its inverse.
//! * [`MaintenanceService`] — a thin actuator loop on a background thread:
//!   snapshot, decide, apply each action through the [`Actuators`] trait
//!   (implemented by `faster-core` on the store). The loop holds no state of
//!   its own beyond the policy, so the races it can participate in are
//!   exactly the actuator calls — which the seeded cooperative scheduler in
//!   `crates/stress` drives deterministically via [`run_tick`].
//!
//! ## Signals and actuators
//!
//! | signal (windowed per tick)              | actuator                     |
//! |-----------------------------------------|------------------------------|
//! | probe steps / probe (+ overflow allocs) | `grow_index` / `shrink_index`|
//! | `hlog.dead_space()` / log size          | `compact(until)`             |
//! | read-cache hit rate                     | `resize_read_cache(pages)`   |
//! | log tail + WAL bytes since last ckpt    | `checkpoint()`               |

use faster_metrics::StoreMetrics;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One decision emitted by the [`Policy`]. Applied by an [`Actuators`] impl.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Double the hash index (probe chains too long / buckets overflowing).
    GrowIndex,
    /// Halve the hash index (probe chains degenerate, index oversized).
    ShrinkIndex,
    /// Roll live records in `[begin, until)` to the tail, then truncate.
    Compact {
        /// Upper bound of the compaction scan (a log address).
        until: u64,
    },
    /// Retarget the read cache's resident page budget.
    ResizeReadCache {
        /// New budget; the log clamps to `[2, buffer_pages]`.
        pages: u64,
    },
    /// Take a checkpoint generation (log + WAL growth since the last one).
    Checkpoint,
}

/// Thresholds and hysteresis bands for every policy decision.
///
/// Each decision uses a Schmitt-trigger pair (`*_hi` arms, `*_lo`/resume
/// disarms; the gap is the dead band) plus a cooldown in ticks. Opposing
/// index resizes additionally get a 4× cooldown so a grow can never be
/// reversed by the very probe-length drop it caused.
#[derive(Debug, Clone, Copy)]
pub struct PolicyConfig {
    /// Grow the index when the windowed mean probe length exceeds this.
    pub grow_probe_hi: f64,
    /// Shrink when the windowed mean probe length falls below this (must be
    /// `< grow_probe_hi`; the gap is the hysteresis band).
    pub shrink_probe_lo: f64,
    /// Minimum probes in a window before the probe signal is trusted.
    pub min_probe_samples: u64,
    /// Never shrink below / grow above these table-size exponents.
    pub min_k_bits: u64,
    pub max_k_bits: u64,
    /// Ticks between same-direction resizes (opposing direction waits 4×).
    pub resize_cooldown_ticks: u64,

    /// Compact when `dead_space / log_size` exceeds this (and the trigger is
    /// armed).
    pub compact_dead_ratio_hi: f64,
    /// Re-arm the compaction trigger only after the ratio falls below this.
    pub compact_resume_ratio: f64,
    /// Minimum dead bytes before compaction is worth the copy cost.
    pub compact_min_bytes: u64,
    /// Ticks between compactions.
    pub compact_cooldown_ticks: u64,

    /// Shrink the read cache when the windowed hit rate falls below this.
    pub rc_hit_lo: f64,
    /// Grow it back when the windowed hit rate exceeds this.
    pub rc_hit_hi: f64,
    /// Minimum lookups in a window before the hit-rate signal is trusted.
    pub rc_min_samples: u64,
    /// Ticks between read-cache resizes.
    pub rc_cooldown_ticks: u64,

    /// Checkpoint when log-tail advance + WAL bytes since the last
    /// generation exceed this.
    pub ckpt_growth_bytes: u64,
    /// Minimum ticks between checkpoints.
    pub ckpt_min_interval_ticks: u64,

    /// Service loop period (ignored by the pure policy, which counts ticks).
    pub tick_interval: Duration,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            grow_probe_hi: 1.5,
            shrink_probe_lo: 1.02,
            min_probe_samples: 4096,
            min_k_bits: 8,
            max_k_bits: 28,
            resize_cooldown_ticks: 4,
            compact_dead_ratio_hi: 0.5,
            compact_resume_ratio: 0.25,
            compact_min_bytes: 1 << 20,
            compact_cooldown_ticks: 8,
            rc_hit_lo: 0.05,
            rc_hit_hi: 0.4,
            rc_min_samples: 2048,
            rc_cooldown_ticks: 8,
            ckpt_growth_bytes: 64 << 20,
            ckpt_min_interval_ticks: 16,
            tick_interval: Duration::from_millis(50),
        }
    }
}

impl PolicyConfig {
    fn validate(&self) {
        assert!(self.shrink_probe_lo < self.grow_probe_hi, "probe bands must not overlap");
        assert!(self.compact_resume_ratio < self.compact_dead_ratio_hi, "compact bands must not overlap");
        assert!(self.rc_hit_lo < self.rc_hit_hi, "read-cache bands must not overlap");
        assert!(self.min_k_bits <= self.max_k_bits);
    }
}

/// Windowed counter values remembered from the previous tick.
#[derive(Debug, Clone, Copy, Default)]
struct PrevCounters {
    probes: u64,
    probe_steps: u64,
    overflow_allocs: u64,
    rc_hits: u64,
    rc_misses: u64,
}

/// Which way the last index resize went (for the directional cooldown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResizeDir {
    Grow,
    Shrink,
}

/// The pure tuning engine: `decide()` maps a metrics snapshot to actions.
///
/// Deterministic and thread-free; all cadence is counted in ticks, so a test
/// can replay any scripted snapshot sequence and get identical decisions.
#[derive(Debug, Clone)]
pub struct Policy {
    cfg: PolicyConfig,
    tick: u64,
    prev: Option<PrevCounters>,
    last_resize: Option<(u64, ResizeDir)>,
    /// Schmitt latch: compaction fires only while armed, and re-arms only
    /// after the dead ratio has fallen below `compact_resume_ratio` **or**
    /// the fired compaction's truncation has landed (`bytes_truncated` grew
    /// past the value at disarm). The ratio alone is not enough: under
    /// sustained churn dead space accrues faster than one compaction
    /// reclaims, the ratio never dips below resume, and a ratio-only latch
    /// would disarm permanently. A compaction whose truncation was fully
    /// clamped (GC bound) makes no progress and keeps the latch down — no
    /// compact↔idle flapping against a clamp.
    compact_armed: bool,
    /// `bytes_truncated` observed when the latch last disarmed.
    compact_trunc_base: u64,
    last_compact_tick: Option<u64>,
    last_rc_tick: Option<u64>,
    /// Baselines captured at the last checkpoint (or first tick).
    ckpt_tail_base: u64,
    ckpt_wal_base: u64,
    last_ckpt_tick: u64,
}

impl Policy {
    pub fn new(cfg: PolicyConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            tick: 0,
            prev: None,
            last_resize: None,
            compact_armed: true,
            compact_trunc_base: 0,
            last_compact_tick: None,
            last_rc_tick: None,
            ckpt_tail_base: 0,
            ckpt_wal_base: 0,
            last_ckpt_tick: 0,
        }
    }

    pub fn config(&self) -> &PolicyConfig {
        &self.cfg
    }

    /// The windowed mean probe length this tick would compute from `m`
    /// (`None` until a window exists or below `min_probe_samples`).
    pub fn window_probe_len(&self, m: &StoreMetrics) -> Option<f64> {
        let prev = self.prev?;
        let probes = m.index.probes.saturating_sub(prev.probes);
        if probes < self.cfg.min_probe_samples {
            return None;
        }
        let steps = m.index.probe_steps.saturating_sub(prev.probe_steps);
        Some(steps as f64 / probes as f64)
    }

    fn window_rc_hit_rate(&self, m: &StoreMetrics) -> Option<f64> {
        let prev = self.prev?;
        let rc = m.read_cache.as_ref()?;
        let hits = rc.hits.saturating_sub(prev.rc_hits);
        let misses = rc.misses.saturating_sub(prev.rc_misses);
        if hits + misses < self.cfg.rc_min_samples {
            return None;
        }
        Some(hits as f64 / (hits + misses) as f64)
    }

    fn resize_allowed(&self, dir: ResizeDir) -> bool {
        match self.last_resize {
            None => true,
            Some((at, last_dir)) => {
                // Reversing direction waits 4× as long as repeating it: the
                // drop in probe length a grow causes must never be read as a
                // shrink signal (and vice versa).
                let wait = if dir == last_dir {
                    self.cfg.resize_cooldown_ticks
                } else {
                    self.cfg.resize_cooldown_ticks * 4
                };
                self.tick.saturating_sub(at) >= wait
            }
        }
    }

    /// One policy tick. Feed monotone snapshots in tick order.
    pub fn decide(&mut self, m: &StoreMetrics) -> Vec<Action> {
        self.tick += 1;
        let mut actions = Vec::new();
        let first_tick = self.prev.is_none();
        if first_tick {
            // Baseline tick: establish windows, decide nothing yet.
            self.ckpt_tail_base = m.hlog.tail;
            self.ckpt_wal_base = m.wal.bytes;
        }

        // ---- compaction (gauge-based; works from the first tick's data) --
        let log_size = m.hlog.log_size().max(1);
        let dead_ratio = m.hlog.dead_space() as f64 / log_size as f64;
        if !self.compact_armed
            && (dead_ratio <= self.cfg.compact_resume_ratio
                || m.hlog.bytes_truncated > self.compact_trunc_base)
        {
            self.compact_armed = true;
        }
        if !first_tick
            && self.compact_armed
            && dead_ratio >= self.cfg.compact_dead_ratio_hi
            && m.hlog.dead_space() >= self.cfg.compact_min_bytes
            && self
                .last_compact_tick
                .is_none_or(|at| self.tick.saturating_sub(at) >= self.cfg.compact_cooldown_ticks)
            && m.hlog.safe_read_only > m.hlog.begin
        {
            actions.push(Action::Compact { until: m.hlog.safe_read_only });
            self.compact_armed = false;
            self.compact_trunc_base = m.hlog.bytes_truncated;
            self.last_compact_tick = Some(self.tick);
        }

        // ---- index resize --------------------------------------------------
        if let Some(avg) = self.window_probe_len(m) {
            let overflow_grew = self
                .prev
                .map(|p| m.index.overflow_allocs > p.overflow_allocs)
                .unwrap_or(false);
            // The probe signal inflates while a chunked resize migrates
            // buckets (every probe may walk both old and new chains), so
            // the grow arm is gated on resize-in-progress: never stack a
            // second grow on a signal the first one is still distorting.
            if (avg > self.cfg.grow_probe_hi || (overflow_grew && avg > self.cfg.shrink_probe_lo))
                && m.index.resize_active == 0
                && m.index.k_bits < self.cfg.max_k_bits
                && self.resize_allowed(ResizeDir::Grow)
            {
                actions.push(Action::GrowIndex);
                self.last_resize = Some((self.tick, ResizeDir::Grow));
            } else if avg < self.cfg.shrink_probe_lo
                && !overflow_grew
                && m.index.k_bits > self.cfg.min_k_bits
                && self.resize_allowed(ResizeDir::Shrink)
            {
                actions.push(Action::ShrinkIndex);
                self.last_resize = Some((self.tick, ResizeDir::Shrink));
            }
        }

        // ---- read-cache residency -----------------------------------------
        if let Some(hit) = self.window_rc_hit_rate(m) {
            let active = m.rc_log.active_pages;
            if active >= 2
                && self
                    .last_rc_tick
                    .is_none_or(|at| self.tick.saturating_sub(at) >= self.cfg.rc_cooldown_ticks)
            {
                if hit < self.cfg.rc_hit_lo && active > 2 {
                    actions.push(Action::ResizeReadCache { pages: (active / 2).max(2) });
                    self.last_rc_tick = Some(self.tick);
                } else if hit > self.cfg.rc_hit_hi {
                    actions.push(Action::ResizeReadCache { pages: active * 2 });
                    self.last_rc_tick = Some(self.tick);
                }
            }
        }

        // ---- checkpoint cadence -------------------------------------------
        let growth = m.hlog.tail.saturating_sub(self.ckpt_tail_base)
            + m.wal.bytes.saturating_sub(self.ckpt_wal_base);
        if !first_tick
            && growth >= self.cfg.ckpt_growth_bytes
            && self.tick.saturating_sub(self.last_ckpt_tick) >= self.cfg.ckpt_min_interval_ticks
        {
            actions.push(Action::Checkpoint);
            self.ckpt_tail_base = m.hlog.tail;
            self.ckpt_wal_base = m.wal.bytes;
            self.last_ckpt_tick = self.tick;
        }

        self.prev = Some(PrevCounters {
            probes: m.index.probes,
            probe_steps: m.index.probe_steps,
            overflow_allocs: m.index.overflow_allocs,
            rc_hits: m.read_cache.as_ref().map(|r| r.hits).unwrap_or(0),
            rc_misses: m.read_cache.as_ref().map(|r| r.misses).unwrap_or(0),
        });
        actions
    }
}

/// Store-side verbs the service drives. Implemented by `faster-core` for
/// `FasterKv` (+ optional `CheckpointManager`); tests substitute scripted
/// fakes.
///
/// Epoch contract: every method must be callable from a thread that holds
/// **no idle session** — `checkpoint`'s durability wait is epoch-gated, so an
/// implementation must acquire any session it needs inside the call and drop
/// it before returning.
pub trait Actuators: Send + Sync {
    /// Current metrics snapshot (counters + gauges filled).
    fn snapshot(&self) -> StoreMetrics;
    /// Doubles the index. Returns false if the resize could not run.
    fn grow_index(&self) -> bool;
    /// Halves the index. Returns false if the resize could not run.
    fn shrink_index(&self) -> bool;
    /// Rolls live records below `until` to the tail; returns records rolled.
    fn compact(&self, until: u64) -> u64;
    /// Retargets the read cache's resident pages; returns the clamped value.
    fn resize_read_cache(&self, pages: u64) -> u64;
    /// Takes a checkpoint generation. Returns false on failure or if the
    /// store has no checkpoint manager attached.
    fn checkpoint(&self) -> bool;
}

/// Monotone counters of everything the service has done (lock-free reads for
/// tests, benches, and the JSON gate).
#[derive(Debug, Default)]
pub struct MaintenanceStats {
    pub ticks: AtomicU64,
    pub grows: AtomicU64,
    pub shrinks: AtomicU64,
    pub resize_failures: AtomicU64,
    pub compactions: AtomicU64,
    pub records_rolled: AtomicU64,
    pub rc_resizes: AtomicU64,
    pub checkpoints: AtomicU64,
    pub checkpoint_failures: AtomicU64,
}

impl MaintenanceStats {
    pub fn actions_total(&self) -> u64 {
        self.grows.load(Ordering::Relaxed)
            + self.shrinks.load(Ordering::Relaxed)
            + self.compactions.load(Ordering::Relaxed)
            + self.rc_resizes.load(Ordering::Relaxed)
            + self.checkpoints.load(Ordering::Relaxed)
    }
}

/// One snapshot → decide → apply cycle. This is the entire body of the
/// service thread's loop, exposed so deterministic tests (the cooperative
/// stress scheduler, the fault harness) can drive ticks without threads.
pub fn run_tick(policy: &mut Policy, acts: &dyn Actuators, stats: &MaintenanceStats) -> Vec<Action> {
    let snapshot = acts.snapshot();
    let actions = policy.decide(&snapshot);
    stats.ticks.fetch_add(1, Ordering::Relaxed);
    for action in &actions {
        match *action {
            Action::GrowIndex => {
                if acts.grow_index() {
                    stats.grows.fetch_add(1, Ordering::Relaxed);
                } else {
                    stats.resize_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
            Action::ShrinkIndex => {
                if acts.shrink_index() {
                    stats.shrinks.fetch_add(1, Ordering::Relaxed);
                } else {
                    stats.resize_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
            Action::Compact { until } => {
                stats.records_rolled.fetch_add(acts.compact(until), Ordering::Relaxed);
                stats.compactions.fetch_add(1, Ordering::Relaxed);
            }
            Action::ResizeReadCache { pages } => {
                acts.resize_read_cache(pages);
                stats.rc_resizes.fetch_add(1, Ordering::Relaxed);
            }
            Action::Checkpoint => {
                if acts.checkpoint() {
                    stats.checkpoints.fetch_add(1, Ordering::Relaxed);
                } else {
                    stats.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    actions
}

struct StopFlag {
    stopped: Mutex<bool>,
    cv: Condvar,
}

/// The background maintenance thread: ticks the policy every
/// `PolicyConfig::tick_interval` until stopped (or dropped).
pub struct MaintenanceService {
    stop: Arc<StopFlag>,
    stats: Arc<MaintenanceStats>,
    running: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MaintenanceService {
    /// Spawns the service. The actuator handle keeps the store alive for the
    /// service's lifetime; drop (or [`stop`](Self::stop)) the service to
    /// release it.
    pub fn start(acts: Arc<dyn Actuators>, policy: Policy) -> Self {
        let interval = policy.config().tick_interval;
        let stop = Arc::new(StopFlag { stopped: Mutex::new(false), cv: Condvar::new() });
        let stats = Arc::new(MaintenanceStats::default());
        let running = Arc::new(AtomicBool::new(true));
        let (stop2, stats2, running2) = (stop.clone(), stats.clone(), running.clone());
        let handle = std::thread::Builder::new()
            .name("faster-maintenance".into())
            .spawn(move || {
                let mut policy = policy;
                loop {
                    {
                        let guard = stop2.stopped.lock().unwrap();
                        let (guard, _) = stop2
                            .cv
                            .wait_timeout_while(guard, interval, |stopped| !*stopped)
                            .unwrap();
                        if *guard {
                            break;
                        }
                    }
                    run_tick(&mut policy, &*acts, &stats2);
                }
                running2.store(false, Ordering::SeqCst);
            })
            .expect("spawn maintenance thread");
        Self { stop, stats, running, handle: Some(handle) }
    }

    /// Counters of applied actions (shared with the service thread).
    pub fn stats(&self) -> &Arc<MaintenanceStats> {
        &self.stats
    }

    /// True until the service thread has exited.
    pub fn is_running(&self) -> bool {
        self.running.load(Ordering::SeqCst)
    }

    /// Stops the thread and waits for the in-flight tick (if any) to finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            *self.stop.stopped.lock().unwrap() = true;
            self.stop.cv.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for MaintenanceService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faster_metrics::StoreMetrics;

    fn snap() -> StoreMetrics {
        let mut m = StoreMetrics::default();
        m.index.k_bits = 16;
        m.hlog.tail = 1 << 20;
        m.hlog.safe_read_only = 1 << 19;
        m.hlog.begin = 64;
        m
    }

    /// Builds a snapshot whose window will show `avg` steps per probe.
    fn with_probe_window(base: &StoreMetrics, probes: u64, avg: f64) -> StoreMetrics {
        let mut m = base.clone();
        m.index.probes += probes;
        m.index.probe_steps += (probes as f64 * avg) as u64;
        m
    }

    #[test]
    fn first_tick_decides_nothing() {
        let mut p = Policy::new(PolicyConfig::default());
        let mut m = snap();
        m.hlog.dead_bytes = 1 << 30; // screaming compaction signal
        assert!(p.decide(&m).is_empty());
    }

    #[test]
    fn grow_fires_above_hi_and_respects_cooldown() {
        let mut p = Policy::new(PolicyConfig::default());
        let m0 = snap();
        p.decide(&m0);
        let m1 = with_probe_window(&m0, 10_000, 3.0);
        assert_eq!(p.decide(&m1), vec![Action::GrowIndex]);
        // Still hot next tick, but inside the cooldown window.
        let m2 = with_probe_window(&m1, 10_000, 3.0);
        assert!(p.decide(&m2).is_empty());
    }

    #[test]
    fn grow_gated_while_resize_in_progress() {
        let mut p = Policy::new(PolicyConfig::default());
        let m0 = snap();
        p.decide(&m0);
        // A hot probe signal during a chunked resize must not stack a grow:
        // the migration itself is what inflates the signal.
        let mut m1 = with_probe_window(&m0, 10_000, 3.0);
        m1.index.resize_active = 1;
        assert!(p.decide(&m1).is_empty(), "grow fired mid-resize");
        // The resize completes and the signal is still hot: now it fires.
        let mut m2 = with_probe_window(&m1, 10_000, 3.0);
        m2.index.resize_active = 0;
        assert_eq!(p.decide(&m2), vec![Action::GrowIndex]);
    }

    #[test]
    fn dead_band_is_quiet() {
        let mut p = Policy::new(PolicyConfig::default());
        let mut m = snap();
        p.decide(&m);
        for _ in 0..32 {
            m = with_probe_window(&m, 10_000, 1.2); // between lo and hi
            assert!(p.decide(&m).is_empty());
        }
    }

    #[test]
    fn shrink_blocked_right_after_grow() {
        let cfg = PolicyConfig::default();
        let mut p = Policy::new(cfg);
        let m0 = snap();
        p.decide(&m0);
        let m1 = with_probe_window(&m0, 10_000, 3.0);
        assert_eq!(p.decide(&m1), vec![Action::GrowIndex]);
        // Probe length collapses (as a grow makes it): shrink must wait the
        // 4× reversal cooldown even though the signal is below lo.
        let mut m = m1;
        for _ in 0..(cfg.resize_cooldown_ticks * 4 - 1) {
            m = with_probe_window(&m, 10_000, 1.0);
            assert!(p.decide(&m).is_empty(), "shrink fired inside reversal cooldown");
        }
        m = with_probe_window(&m, 10_000, 1.0);
        assert_eq!(p.decide(&m), vec![Action::ShrinkIndex]);
    }

    #[test]
    fn compact_is_a_schmitt_trigger() {
        let mut p = Policy::new(PolicyConfig { compact_min_bytes: 1, ..Default::default() });
        let mut m = snap();
        p.decide(&m);
        m.hlog.dead_bytes = m.hlog.log_size() * 3 / 4;
        let a = p.decide(&m);
        assert!(matches!(a.as_slice(), [Action::Compact { .. }]));
        // Ratio still high: trigger is disarmed, no second compact.
        for _ in 0..64 {
            assert!(p.decide(&m).is_empty());
        }
        // Ratio falls below resume → re-arms; climbs again → fires again.
        m.hlog.bytes_truncated = m.hlog.dead_bytes;
        assert!(p.decide(&m).is_empty());
        m.hlog.dead_bytes += m.hlog.log_size() * 3 / 4;
        let a = p.decide(&m);
        assert!(matches!(a.as_slice(), [Action::Compact { .. }]));
    }

    #[test]
    fn checkpoint_keyed_on_growth_since_last() {
        let cfg = PolicyConfig {
            ckpt_growth_bytes: 1 << 20,
            ckpt_min_interval_ticks: 1,
            ..Default::default()
        };
        let mut p = Policy::new(cfg);
        let mut m = snap();
        p.decide(&m);
        assert!(p.decide(&m).is_empty(), "no growth, no checkpoint");
        m.hlog.tail += 2 << 20;
        assert_eq!(p.decide(&m), vec![Action::Checkpoint]);
        // Baseline advanced: same tail is no longer growth.
        assert!(p.decide(&m).is_empty());
        m.wal.bytes += 2 << 20; // WAL growth alone also triggers
        assert_eq!(p.decide(&m), vec![Action::Checkpoint]);
    }

    #[test]
    fn rc_resize_follows_hit_rate_bands() {
        let mut p = Policy::new(PolicyConfig { rc_cooldown_ticks: 1, ..Default::default() });
        let mut m = snap();
        m.read_cache = Some(Default::default());
        m.rc_log.active_pages = 8;
        p.decide(&m);
        // Cold cache: hit rate ~0 → halve.
        m.read_cache.as_mut().unwrap().misses += 10_000;
        assert_eq!(p.decide(&m), vec![Action::ResizeReadCache { pages: 4 }]);
        m.rc_log.active_pages = 4;
        // Hot cache: hit rate ~0.9 → double.
        let rc = m.read_cache.as_mut().unwrap();
        rc.hits += 9_000;
        rc.misses += 1_000;
        assert_eq!(p.decide(&m), vec![Action::ResizeReadCache { pages: 8 }]);
        // In the dead band: nothing.
        let rc = m.read_cache.as_mut().unwrap();
        rc.hits += 2_000;
        rc.misses += 8_000;
        m.rc_log.active_pages = 8;
        assert!(p.decide(&m).is_empty());
    }

    #[test]
    fn service_ticks_and_stops() {
        #[derive(Default)]
        struct CountingActs(AtomicU64);
        impl Actuators for CountingActs {
            fn snapshot(&self) -> StoreMetrics {
                self.0.fetch_add(1, Ordering::Relaxed);
                StoreMetrics::default()
            }
            fn grow_index(&self) -> bool {
                true
            }
            fn shrink_index(&self) -> bool {
                true
            }
            fn compact(&self, _until: u64) -> u64 {
                0
            }
            fn resize_read_cache(&self, pages: u64) -> u64 {
                pages
            }
            fn checkpoint(&self) -> bool {
                false
            }
        }
        let acts = Arc::new(CountingActs::default());
        let policy = Policy::new(PolicyConfig {
            tick_interval: Duration::from_millis(1),
            ..Default::default()
        });
        let svc = MaintenanceService::start(acts.clone(), policy);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while svc.stats().ticks.load(Ordering::Relaxed) < 3 {
            assert!(std::time::Instant::now() < deadline, "service never ticked");
            std::thread::yield_now();
        }
        svc.stop();
        let after = acts.0.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(acts.0.load(Ordering::Relaxed), after, "service kept ticking after stop");
    }
}
