//! Seeded cooperative stress schedules for every maintenance actuator racing
//! foreground traffic (ISSUE 8 satellite): index grow during concurrent
//! upserts, policy compaction against the checkpoint manager's GC clamp,
//! policy checkpoints (and the WAL truncation they perform) during durable
//! appends, and read-cache resizes under a shifting read mix.
//!
//! Scheduling discipline: every foreground worker uses a **per-step
//! session** — create, run a handful of ops, drop, all inside one virtual
//! thread step. That guarantees no idle epoch guard survives into any other
//! thread's step, so an actuator step (grow/compact/checkpoint inside
//! [`run_tick`]) can always drive its epoch triggers to completion without a
//! cooperative deadlock. The maintenance virtual thread runs exactly the
//! service loop body (`run_tick`) per step, so the interleavings explored
//! are the real service races at protocol-step granularity, replayable from
//! the seed.

use faster_core::ckpt_manager::recover_store_with_wal;
use faster_core::maintenance::{run_tick, MaintenanceStats, Policy, PolicyConfig};
use faster_core::{
    CheckpointConfig, CheckpointManager, CountStore, FasterKv, FasterKvConfig, OpError, Outcome,
    Session,
};
use faster_hlog::HLogConfig;
use faster_index::IndexConfig;
use faster_storage::MemDevice;
use faster_stress::{seed_range_from_env, Scheduler, Step, VThread};
use faster_util::XorShift64;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::Duration;

/// A policy configuration with every trigger disabled; each schedule enables
/// (and sharpens) exactly the decision it stresses.
fn quiet() -> PolicyConfig {
    PolicyConfig {
        min_probe_samples: u64::MAX,
        compact_min_bytes: u64::MAX,
        rc_min_samples: u64::MAX,
        ckpt_growth_bytes: u64::MAX,
        ..PolicyConfig::default()
    }
}

fn read_blocking(session: &Session<u64, u64, CountStore>, key: u64) -> Option<u64> {
    match session.read(&key, &0) {
        Ok(Outcome::Value(v)) => Some(v),
        Err(OpError::NotFound) => None,
        Err(OpError::Pending(id)) => {
            for c in session.complete_pending(true) {
                if c.id != id {
                    continue;
                }
                return match c.result {
                    Ok(Outcome::Value(v)) => Some(v),
                    Err(OpError::NotFound) => None,
                    other => panic!("pending read {id} failed: {other:?}"),
                };
            }
            panic!("pending read {id} never completed")
        }
        other => panic!("read of {key} refused: {other:?}"),
    }
}

/// Schedule A: the grow actuator racing concurrent upserts. Three writers
/// hammer a deliberately undersized index (k=6 for ~6K keys) while the
/// maintenance thread ticks the real policy; the probe-length signal must
/// fire, the sessionless grow must complete mid-traffic, and every committed
/// key must stay readable through however many migrations interleave.
fn grow_during_upserts_case(seed: u64) {
    let cfg = FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 6, tag_bits: 15, max_resize_chunks: 8 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 8, mutable_pages: 6, io_threads: 2 })
        .with_max_sessions(16)
        .with_refresh_interval(16);
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg, CountStore, MemDevice::new(2));
    let acts = store.maintenance_actuators(None);
    let stats = MaintenanceStats::default();
    let committed: RefCell<HashMap<u64, u64>> = RefCell::new(HashMap::new());
    let workers_done = Cell::new(0u32);

    let report = {
        let mut threads: Vec<VThread<'_>> = Vec::new();
        for w in 0..3u64 {
            let store = &store;
            let committed = &committed;
            let workers_done = &workers_done;
            let stats = &stats;
            let mut rng = XorShift64::new(seed ^ (w + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut steps = 0u32;
            let mut counted = false;
            threads.push(Box::new(move || {
                // Keep feeding probes until the policy has grown at least
                // once (bounded), so the probe window is never starved by an
                // unlucky schedule.
                if steps >= 300 || (steps >= 48 && stats.grows.load(Relaxed) >= 1) {
                    if !counted {
                        counted = true;
                        workers_done.set(workers_done.get() + 1);
                    }
                    return Step::Done;
                }
                steps += 1;
                let session = store.start_session();
                for _ in 0..16 {
                    let key = w * 10_000 + rng.next_below(2048);
                    let value = rng.next_u64();
                    session.upsert(&key, &value).expect("writable");
                    committed.borrow_mut().insert(key, value);
                }
                Step::Progress
            }));
        }
        {
            let acts = acts.clone();
            let stats = &stats;
            let workers_done = &workers_done;
            let mut policy = Policy::new(PolicyConfig {
                grow_probe_hi: 1.3,
                shrink_probe_lo: 1.05,
                min_probe_samples: 32,
                min_k_bits: 4,
                max_k_bits: 12,
                resize_cooldown_ticks: 1,
                ..quiet()
            });
            let mut ticks = 0u32;
            threads.push(Box::new(move || {
                if ticks >= 500 || (workers_done.get() == 3 && stats.grows.load(Relaxed) >= 1) {
                    return Step::Done;
                }
                ticks += 1;
                run_tick(&mut policy, &*acts, stats);
                Step::Progress
            }));
        }
        Scheduler::from_seed(seed).run(&mut threads, 20_000)
    };

    assert!(!report.starved(), "seed {seed}: schedule starved ({:?})", report.outcome);
    assert!(stats.grows.load(Relaxed) >= 1, "seed {seed}: policy never grew the index");
    assert_eq!(stats.resize_failures.load(Relaxed), 0, "seed {seed}: resize failed");
    assert!(
        store.index().k_bits() > 6,
        "seed {seed}: index still at k=6 after {} grows",
        stats.grows.load(Relaxed)
    );
    let session = store.start_session();
    for (key, value) in committed.borrow().iter() {
        assert_eq!(
            read_blocking(&session, *key),
            Some(*value),
            "seed {seed}: key {key} lost across grow"
        );
    }
}

#[test]
fn grow_actuator_races_concurrent_upserts() {
    for seed in seed_range_from_env(4) {
        grow_during_upserts_case(seed);
    }
}

/// Schedule B: policy compaction against the checkpoint manager's GC clamp
/// (PR 4). The first compaction runs unclamped (no generation retained yet),
/// truncating real dead space; the checkpointer then starts committing
/// generations, and every later compaction is clamped so the begin address
/// can never pass the oldest retained generation's begin — asserted after
/// every tick, through every interleaving.
fn compaction_vs_gc_clamp_case(seed: u64) {
    let cfg = FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 10, buffer_pages: 8, mutable_pages: 2, io_threads: 2 })
        .with_max_sessions(16)
        .with_refresh_interval(16);
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg, CountStore, MemDevice::new(2));
    let mgr = Arc::new(CheckpointManager::new(MemDevice::new(1), CheckpointConfig::default()));
    let acts = store.maintenance_actuators(Some(mgr.clone()));
    let stats = MaintenanceStats::default();
    // key -> Some(value) (live) or None (deleted).
    let oracle: RefCell<HashMap<u64, Option<u64>>> = RefCell::new(HashMap::new());
    let workers_done = Cell::new(0u32);
    let ckpts_done = Cell::new(false);

    let report = {
        let mut threads: Vec<VThread<'_>> = Vec::new();
        for w in 0..2u64 {
            let store = &store;
            let oracle = &oracle;
            let workers_done = &workers_done;
            let stats = &stats;
            let mut rng = XorShift64::new(seed ^ (w + 11).wrapping_mul(0x2545_f491_4f6c_dd1d));
            let mut steps = 0u32;
            let mut counted = false;
            threads.push(Box::new(move || {
                // Keep creating dead space until the re-armed (now clamped)
                // follow-up compaction has fired too (bounded).
                if steps >= 300 || (steps >= 70 && stats.compactions.load(Relaxed) >= 2) {
                    if !counted {
                        counted = true;
                        workers_done.set(workers_done.get() + 1);
                    }
                    return Step::Done;
                }
                steps += 1;
                let session = store.start_session();
                for _ in 0..6 {
                    let key = rng.next_below(96);
                    if rng.next_below(8) == 0 {
                        session.delete(&key).expect("writable");
                        oracle.borrow_mut().insert(key, None);
                    } else {
                        let value = rng.next_u64();
                        session.upsert(&key, &value).expect("writable");
                        oracle.borrow_mut().insert(key, Some(value));
                    }
                }
                Step::Progress
            }));
        }
        {
            // The checkpointer: waits for the first (unclamped) compaction,
            // then commits generations that pin the begin address.
            let store = &store;
            let mgr = mgr.clone();
            let stats = &stats;
            let ckpts_done = &ckpts_done;
            let mut done_count = 0u32;
            threads.push(Box::new(move || {
                if stats.compactions.load(Relaxed) == 0 {
                    return Step::Stalled;
                }
                mgr.checkpoint_store(store).expect("checkpoint");
                done_count += 1;
                if done_count >= 5 {
                    ckpts_done.set(true);
                    return Step::Done;
                }
                Step::Progress
            }));
        }
        {
            let acts = acts.clone();
            let store = &store;
            let mgr = mgr.clone();
            let stats = &stats;
            let workers_done = &workers_done;
            let ckpts_done = &ckpts_done;
            let mut policy = Policy::new(PolicyConfig {
                compact_dead_ratio_hi: 0.15,
                compact_resume_ratio: 0.08,
                compact_min_bytes: 256,
                compact_cooldown_ticks: 1,
                ..quiet()
            });
            let mut ticks = 0u32;
            threads.push(Box::new(move || {
                if ticks >= 500
                    || (workers_done.get() == 2
                        && ckpts_done.get()
                        && stats.compactions.load(Relaxed) >= 2)
                {
                    return Step::Done;
                }
                ticks += 1;
                run_tick(&mut policy, &*acts, stats);
                if std::env::var_os("MAINT_DBG").is_some() && ticks.is_multiple_of(25) {
                    let m = store.metrics();
                    eprintln!(
                        "tick {ticks}: dead={} trunc={} size={} ratio={:.3} sro={} begin={} compactions={}",
                        m.hlog.dead_bytes,
                        m.hlog.bytes_truncated,
                        m.hlog.log_size(),
                        m.hlog.dead_space() as f64 / m.hlog.log_size().max(1) as f64,
                        m.hlog.safe_read_only,
                        m.hlog.begin,
                        stats.compactions.load(Relaxed)
                    );
                }
                // The PR 4 invariant, re-checked after every actuator round:
                // no compaction may truncate past a retained generation.
                if let Some(bound) = mgr.safe_truncation_bound() {
                    assert!(
                        store.log().begin_address() <= bound,
                        "seed {seed}: begin {:?} passed GC clamp {bound:?}",
                        store.log().begin_address()
                    );
                }
                Step::Progress
            }));
        }
        Scheduler::from_seed(seed).run(&mut threads, 20_000)
    };

    assert!(!report.starved(), "seed {seed}: schedule starved ({:?})", report.outcome);
    assert!(
        stats.compactions.load(Relaxed) >= 2,
        "seed {seed}: expected a clamped follow-up compaction, got {}",
        stats.compactions.load(Relaxed)
    );
    assert!(stats.records_rolled.load(Relaxed) >= 1, "seed {seed}: nothing rolled to tail");
    assert!(store.log().begin_address().raw() > 0, "seed {seed}: compaction never truncated");
    if let Some(bound) = mgr.safe_truncation_bound() {
        assert!(store.log().begin_address() <= bound, "seed {seed}: final clamp violated");
    }
    let session = store.start_session();
    for (key, expect) in oracle.borrow().iter() {
        assert_eq!(
            read_blocking(&session, *key),
            *expect,
            "seed {seed}: key {key} wrong after compaction"
        );
    }
}

#[test]
fn compaction_actuator_respects_gc_clamp() {
    for seed in seed_range_from_env(4) {
        compaction_vs_gc_clamp_case(seed);
    }
}

/// Schedule C: the checkpoint-cadence actuator firing while foreground
/// sessions append to (and wait on) the WAL — each policy checkpoint also
/// truncates the WAL below the retained generation, so this races WAL
/// truncation against group-committed appends. Afterwards the store is
/// recovered from the surviving devices and must equal the oracle exactly.
fn checkpoint_during_wal_traffic_case(seed: u64) {
    let cfg = FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 8, mutable_pages: 6, io_threads: 2 })
        .with_max_sessions(16)
        .with_refresh_interval(16)
        .with_wal(faster_wal::WalConfig {
            batch_window: Duration::ZERO,
            segment_size: 4096,
        });
    let ckpt_cfg = CheckpointConfig { retain: 1, ..Default::default() };
    let log_dev = MemDevice::new(2);
    let ckpt_dev = MemDevice::new(1);
    let wal_dev = MemDevice::new(1);
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new_with_wal(cfg, CountStore, log_dev.clone(), wal_dev.clone());
    let mgr = Arc::new(CheckpointManager::new(ckpt_dev.clone(), ckpt_cfg));
    let acts = store.maintenance_actuators(Some(mgr.clone()));
    let stats = MaintenanceStats::default();
    let oracle: RefCell<HashMap<u64, u64>> = RefCell::new(HashMap::new());
    let workers_done = Cell::new(0u32);

    let report = {
        let mut threads: Vec<VThread<'_>> = Vec::new();
        for w in 0..2u64 {
            let store = &store;
            let oracle = &oracle;
            let workers_done = &workers_done;
            let stats = &stats;
            let mut rng = XorShift64::new(seed ^ (w + 29).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut steps = 0u32;
            let mut counted = false;
            threads.push(Box::new(move || {
                // Keep generating WAL growth until at least two policy
                // checkpoints have truncated behind us (bounded).
                if steps >= 200 || (steps >= 40 && stats.checkpoints.load(Relaxed) >= 2) {
                    if !counted {
                        counted = true;
                        workers_done.set(workers_done.get() + 1);
                    }
                    return Step::Done;
                }
                steps += 1;
                let session = store.start_session();
                for _ in 0..4 {
                    let key = w * 1_000 + rng.next_below(64);
                    let value = rng.next_u64();
                    session.upsert(&key, &value).expect("writable");
                    oracle.borrow_mut().insert(key, value);
                }
                // Only durable (group-committed) state enters the oracle.
                session.wait_wal_durable().expect("wal durability");
                Step::Progress
            }));
        }
        {
            let acts = acts.clone();
            let stats = &stats;
            let workers_done = &workers_done;
            let mut policy = Policy::new(PolicyConfig {
                ckpt_growth_bytes: 1,
                ckpt_min_interval_ticks: 1,
                ..quiet()
            });
            let mut ticks = 0u32;
            threads.push(Box::new(move || {
                if ticks >= 500 || (workers_done.get() == 2 && stats.checkpoints.load(Relaxed) >= 2)
                {
                    return Step::Done;
                }
                ticks += 1;
                run_tick(&mut policy, &*acts, stats);
                Step::Progress
            }));
        }
        Scheduler::from_seed(seed).run(&mut threads, 20_000)
    };

    assert!(!report.starved(), "seed {seed}: schedule starved ({:?})", report.outcome);
    assert!(
        stats.checkpoints.load(Relaxed) >= 2,
        "seed {seed}: policy never checkpointed under WAL traffic"
    );
    assert_eq!(stats.checkpoint_failures.load(Relaxed), 0, "seed {seed}: checkpoint failed");

    // Clean shutdown, then recover from the surviving devices: checkpoint
    // arbitration + WAL replay must reproduce the oracle exactly.
    drop(acts);
    drop(store);
    let recovered = recover_store_with_wal::<u64, u64, CountStore>(
        cfg, CountStore, log_dev, ckpt_dev, wal_dev, ckpt_cfg,
    )
    .expect("recovery after maintenance checkpoints");
    assert!(recovered.generation.is_some(), "seed {seed}: no generation recovered");
    let session = recovered.store.start_session();
    for (key, value) in oracle.borrow().iter() {
        assert_eq!(
            read_blocking(&session, *key),
            Some(*value),
            "seed {seed}: durable key {key} lost across recovery"
        );
    }
    assert_eq!(read_blocking(&session, 999_999), None, "seed {seed}: phantom key");
}

#[test]
fn checkpoint_actuator_races_wal_truncation() {
    for seed in seed_range_from_env(4) {
        checkpoint_during_wal_traffic_case(seed);
    }
}

/// Schedule D: the read-cache residency actuator under a shifting read mix.
/// A uniform scan over a cold keyspace drives the hit rate under the lower
/// band (policy shrinks the cache, evicting concurrently with promotions);
/// the workload then collapses onto a hot set, the hit rate crosses the
/// upper band, and the policy grows it back — all while readers must keep
/// seeing correct values.
fn read_cache_resize_case(seed: u64) {
    let cfg = FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 10, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 4, mutable_pages: 1, io_threads: 2 })
        .with_max_sessions(16)
        .with_refresh_interval(16)
        .with_read_cache(HLogConfig {
            page_bits: 10,
            buffer_pages: 8,
            mutable_pages: 4,
            io_threads: 1,
        });
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg, CountStore, MemDevice::new(2));
    const KEYS: u64 = 4096;
    {
        let session = store.start_session();
        for k in 0..KEYS {
            session.upsert(&k, &(k + 7)).expect("writable");
        }
        store.log().flush_barrier().unwrap();
    }
    let acts = store.maintenance_actuators(None);
    let stats = MaintenanceStats::default();
    let workers_done = Cell::new(0u32);
    let saw_shrink = Cell::new(false);
    let saw_grow = Cell::new(false);

    let report = {
        let mut threads: Vec<VThread<'_>> = Vec::new();
        for w in 0..2u64 {
            let store = &store;
            let workers_done = &workers_done;
            let saw_grow = &saw_grow;
            let mut rng = XorShift64::new(seed ^ (w + 53).wrapping_mul(0x2545_f491_4f6c_dd1d));
            let mut steps = 0u32;
            let mut counted = false;
            threads.push(Box::new(move || {
                if steps >= 250 || (steps >= 50 && saw_grow.get()) {
                    if !counted {
                        counted = true;
                        workers_done.set(workers_done.get() + 1);
                    }
                    return Step::Done;
                }
                steps += 1;
                let session = store.start_session();
                for _ in 0..16 {
                    // Phase 1: uniform cold scan (hit rate ~6%). Phase 2:
                    // an 8-key hot set (hit rate ~1 once promoted).
                    let key =
                        if steps <= 25 { rng.next_below(KEYS) } else { rng.next_below(8) };
                    assert_eq!(
                        read_blocking(&session, key),
                        Some(key + 7),
                        "seed {seed}: wrong value under rc resize"
                    );
                }
                Step::Progress
            }));
        }
        {
            let acts = acts.clone();
            let store = &store;
            let stats = &stats;
            let workers_done = &workers_done;
            let saw_shrink = &saw_shrink;
            let saw_grow = &saw_grow;
            let mut policy = Policy::new(PolicyConfig {
                rc_hit_lo: 0.2,
                rc_hit_hi: 0.6,
                rc_min_samples: 24,
                rc_cooldown_ticks: 1,
                ..quiet()
            });
            let mut last_active = store.read_cache_log().unwrap().active_pages();
            let mut ticks = 0u32;
            threads.push(Box::new(move || {
                if ticks >= 600 || (workers_done.get() == 2 && saw_shrink.get() && saw_grow.get())
                {
                    return Step::Done;
                }
                ticks += 1;
                run_tick(&mut policy, &*acts, stats);
                let active = store.read_cache_log().unwrap().active_pages();
                if active < last_active {
                    saw_shrink.set(true);
                }
                if active > last_active {
                    saw_grow.set(true);
                }
                last_active = active;
                Step::Progress
            }));
        }
        Scheduler::from_seed(seed).run(&mut threads, 30_000)
    };

    assert!(!report.starved(), "seed {seed}: schedule starved ({:?})", report.outcome);
    assert!(saw_shrink.get(), "seed {seed}: cold phase never shrank the read cache");
    assert!(saw_grow.get(), "seed {seed}: hot phase never grew the read cache back");
    assert!(stats.rc_resizes.load(Relaxed) >= 2, "seed {seed}: fewer than two rc resizes");
    let active = store.read_cache_log().unwrap().active_pages();
    assert!((2..=8).contains(&active), "seed {seed}: rc residency {active} out of bounds");
}

#[test]
fn read_cache_actuator_follows_hit_rate() {
    for seed in seed_range_from_env(4) {
        read_cache_resize_case(seed);
    }
}
