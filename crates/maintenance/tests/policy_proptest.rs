//! Property tests of the [`Policy`] engine over scripted metric-snapshot
//! sequences (ISSUE 8 satellite). Two families:
//!
//! * **Hysteresis stability** — however the signals move, the decision trace
//!   can never flap: opposing index resizes are separated by the 4× reversal
//!   cooldown, same-direction resizes by the base cooldown, compactions by
//!   their cooldown *and* an observed re-arm (ratio below resume, or the
//!   previous compaction's truncation landing), checkpoints by their minimum
//!   interval.
//! * **Monotonicity** — every decision is monotone in its triggering signal:
//!   if a snapshot fires an action, the same snapshot with that signal
//!   pushed further in the triggering direction (on a cloned policy in the
//!   identical state) fires it too.
//!
//! The engine is pure (snapshot in → actions out, cadence counted in ticks),
//! so scripts replay with no threads or clocks involved.

use faster_maintenance::{Action, Policy, PolicyConfig};
use faster_metrics::StoreMetrics;
use proptest::prelude::*;
use std::time::Duration;

/// One scripted tick: deltas applied to the monotone counters.
#[derive(Debug, Clone, Copy)]
struct TickDelta {
    probes: u64,
    /// Windowed mean probe length × 100 (probe_steps += probes · avg).
    avg_x100: u64,
    overflow: u64,
    dead: u64,
    /// Simulates a compaction's truncation landing: `bytes_truncated`
    /// catches up to `dead_bytes`.
    truncate: bool,
    tail: u64,
    wal: u64,
    rc_hits: u64,
    rc_misses: u64,
}

fn tick_strategy() -> impl Strategy<Value = TickDelta> {
    (
        (0u64..4096, 95u64..350, 0u64..2, 0u64..32_768, any::<bool>()),
        (0u64..65_536, 0u64..65_536, 0u64..2048, 0u64..2048),
    )
        .prop_map(|((probes, avg_x100, overflow, dead, truncate), (tail, wal, rc_hits, rc_misses))| {
            TickDelta { probes, avg_x100, overflow, dead, truncate, tail, wal, rc_hits, rc_misses }
        })
}

/// Aggressive-but-banded config so random scripts actually fire actions.
fn cfg() -> PolicyConfig {
    PolicyConfig {
        grow_probe_hi: 1.5,
        shrink_probe_lo: 1.02,
        min_probe_samples: 256,
        min_k_bits: 8,
        max_k_bits: 28,
        resize_cooldown_ticks: 3,
        compact_dead_ratio_hi: 0.3,
        compact_resume_ratio: 0.15,
        compact_min_bytes: 1024,
        compact_cooldown_ticks: 2,
        rc_hit_lo: 0.1,
        rc_hit_hi: 0.5,
        rc_min_samples: 128,
        rc_cooldown_ticks: 2,
        ckpt_growth_bytes: 32_768,
        ckpt_min_interval_ticks: 2,
        tick_interval: Duration::from_millis(1),
    }
}

/// Replays `script` into a snapshot sequence, simulating the actuators'
/// effect on the gauges (k_bits and read-cache residency follow the emitted
/// actions; truncation follows the script's `truncate` flag).
fn snapshots(script: &[TickDelta]) -> Vec<StoreMetrics> {
    let mut out = Vec::with_capacity(script.len());
    let mut m = StoreMetrics::default();
    m.index.k_bits = 16;
    m.hlog.begin = 64;
    m.hlog.tail = 1 << 20;
    m.read_cache = Some(Default::default());
    m.rc_log.active_pages = 8;
    for d in script {
        m.index.probes += d.probes;
        m.index.probe_steps += d.probes * d.avg_x100 / 100;
        m.index.overflow_allocs += d.overflow;
        m.hlog.dead_bytes += d.dead;
        if d.truncate {
            m.hlog.bytes_truncated = m.hlog.dead_bytes;
        }
        m.hlog.tail += d.tail;
        m.hlog.safe_read_only = m.hlog.tail / 2;
        m.wal.bytes += d.wal;
        let rc = m.read_cache.as_mut().unwrap();
        rc.hits += d.rc_hits;
        rc.misses += d.rc_misses;
        out.push(m.clone());
    }
    out
}

/// Applies the actuator side of `actions` to the gauges of the *next*
/// snapshots, as the real store would (index doubling/halving, rc clamp).
fn apply_gauges(snaps: &mut [StoreMetrics], from: usize, actions: &[Action]) {
    for a in actions {
        for s in snaps[from..].iter_mut() {
            match *a {
                Action::GrowIndex => s.index.k_bits += 1,
                Action::ShrinkIndex => s.index.k_bits -= 1,
                Action::ResizeReadCache { pages } => {
                    s.rc_log.active_pages = pages.clamp(2, 64)
                }
                _ => {}
            }
        }
    }
}

proptest! {
    /// No decision sequence may flap: every pair of related actions is
    /// separated by its cooldown, opposing resizes by the 4× reversal
    /// cooldown, and two compactions always have an observed re-arm cause
    /// in between.
    #[test]
    fn decisions_are_hysteresis_stable(script in proptest::collection::vec(tick_strategy(), 20..120)) {
        let cfg = cfg();
        let mut snaps = snapshots(&script);
        let mut policy = Policy::new(cfg);
        // (tick index, action) trace; ticks are 1-based like Policy::tick.
        let mut trace: Vec<(usize, Action)> = Vec::new();
        for i in 0..snaps.len() {
            let actions = policy.decide(&snaps[i]);
            if i + 1 < snaps.len() {
                apply_gauges(&mut snaps, i + 1, &actions);
            }
            trace.extend(actions.into_iter().map(|a| (i + 1, a)));
        }

        let resizes: Vec<(usize, bool)> = trace
            .iter()
            .filter_map(|&(t, a)| match a {
                Action::GrowIndex => Some((t, true)),
                Action::ShrinkIndex => Some((t, false)),
                _ => None,
            })
            .collect();
        for w in resizes.windows(2) {
            let ((t1, d1), (t2, d2)) = (w[0], w[1]);
            let need = if d1 == d2 {
                cfg.resize_cooldown_ticks
            } else {
                cfg.resize_cooldown_ticks * 4
            } as usize;
            prop_assert!(
                t2 - t1 >= need,
                "resize flap: {:?}@{t1} then {:?}@{t2} (< {need} ticks)",
                d1, d2
            );
        }

        let compacts: Vec<usize> = trace
            .iter()
            .filter_map(|&(t, a)| matches!(a, Action::Compact { .. }).then_some(t))
            .collect();
        for w in compacts.windows(2) {
            let (t1, t2) = (w[0], w[1]);
            prop_assert!(t2 - t1 >= cfg.compact_cooldown_ticks as usize, "compact cooldown violated");
            // Re-arm must have an observable cause between the two fires:
            // the ratio dipped below resume, or the first compaction's
            // truncation landed (bytes_truncated grew past its fire-time
            // value).
            let base = snaps[t1 - 1].hlog.bytes_truncated;
            let rearmed = (t1..t2).any(|t| {
                let h = &snaps[t].hlog;
                let ratio = h.dead_space() as f64 / h.log_size().max(1) as f64;
                ratio <= cfg.compact_resume_ratio || h.bytes_truncated > base
            });
            prop_assert!(rearmed, "compact@{t2} fired with no re-arm cause after compact@{t1}");
        }

        let ckpts: Vec<usize> = trace
            .iter()
            .filter_map(|&(t, a)| matches!(a, Action::Checkpoint).then_some(t))
            .collect();
        for w in ckpts.windows(2) {
            prop_assert!(
                w[1] - w[0] >= cfg.ckpt_min_interval_ticks as usize,
                "checkpoint interval violated"
            );
        }

        let rc: Vec<usize> = trace
            .iter()
            .filter_map(|&(t, a)| matches!(a, Action::ResizeReadCache { .. }).then_some(t))
            .collect();
        for w in rc.windows(2) {
            prop_assert!(w[1] - w[0] >= cfg.rc_cooldown_ticks as usize, "rc cooldown violated");
        }
    }

    /// Every decision is monotone in its triggering signal: push the signal
    /// further in the firing direction on a clone in the identical state,
    /// and the action must still fire.
    #[test]
    fn decisions_are_monotone_in_signal(script in proptest::collection::vec(tick_strategy(), 20..100)) {
        let mut snaps = snapshots(&script);
        let mut policy = Policy::new(cfg());
        for i in 0..snaps.len() {
            let m = snaps[i].clone();
            // Clones taken *before* the real tick see the same policy state.
            let mut p_probe = policy.clone();
            let mut p_dead = policy.clone();
            let mut p_wal = policy.clone();
            let actions = policy.decide(&m);

            let mut m_hi = m.clone();
            m_hi.index.probe_steps += m.index.probes; // avg strictly higher
            let hi = p_probe.decide(&m_hi);
            if actions.contains(&Action::GrowIndex) {
                prop_assert!(
                    hi.contains(&Action::GrowIndex),
                    "tick {}: grow vanished when probe signal rose", i + 1
                );
            }

            let mut m_dead = m.clone();
            m_dead.hlog.dead_bytes += 1 << 20;
            let hi = p_dead.decide(&m_dead);
            if actions.iter().any(|a| matches!(a, Action::Compact { .. })) {
                prop_assert!(
                    hi.iter().any(|a| matches!(a, Action::Compact { .. })),
                    "tick {}: compact vanished when dead space rose", i + 1
                );
            }

            let mut m_wal = m.clone();
            m_wal.wal.bytes += 1 << 20;
            let hi = p_wal.decide(&m_wal);
            if actions.contains(&Action::Checkpoint) {
                prop_assert!(
                    hi.contains(&Action::Checkpoint),
                    "tick {}: checkpoint vanished when WAL growth rose", i + 1
                );
            }

            if i + 1 < snaps.len() {
                apply_gauges(&mut snaps, i + 1, &actions);
            }
        }
    }

    /// The shrink decision is monotone downward: if the windowed probe
    /// length already reads "oversized", reading even shorter chains must
    /// not cancel the shrink.
    #[test]
    fn shrink_is_monotone_downward(script in proptest::collection::vec(tick_strategy(), 20..100)) {
        let mut snaps = snapshots(&script);
        let mut policy = Policy::new(cfg());
        for i in 0..snaps.len() {
            let m = snaps[i].clone();
            let mut p_lo = policy.clone();
            let actions = policy.decide(&m);

            if actions.contains(&Action::ShrinkIndex) {
                let mut m_lo = m.clone();
                // Drop the window to exactly 1.0 steps/probe (the floor).
                let prev_steps = snaps[i.saturating_sub(1)].index.probe_steps;
                let prev_probes = snaps[i.saturating_sub(1)].index.probes;
                let window_probes = m.index.probes - if i == 0 { 0 } else { prev_probes };
                m_lo.index.probe_steps = if i == 0 { 0 } else { prev_steps } + window_probes;
                let lo = p_lo.decide(&m_lo);
                prop_assert!(
                    lo.contains(&Action::ShrinkIndex),
                    "tick {}: shrink vanished when probe signal fell", i + 1
                );
            }

            if i + 1 < snaps.len() {
                apply_gauges(&mut snaps, i + 1, &actions);
            }
        }
    }
}
