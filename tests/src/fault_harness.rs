//! Crash/recovery fault-injection harness.
//!
//! Drives an oracle-tracked workload against a [`FaultDevice`]-wrapped
//! in-memory device, takes a checkpoint, crashes the device at a scripted
//! write sequence number (optionally tearing the crash-point write), then
//! recovers from the checkpoint over the surviving bytes and checks the
//! CPR-style invariants:
//!
//! 1. every operation acknowledged before `checkpoint()` returned is
//!    readable post-recovery with exactly the oracle's value;
//! 2. the recovered state is a consistent prefix — keys never written (or
//!    only written after the checkpoint) are absent, and no key serves a
//!    torn or stale value;
//! 3. recovery itself never panics or loops, and the recovered store
//!    accepts new traffic.
//!
//! The sweep is seeded via `FASTER_FAULT_SEED_BASE` / `FASTER_FAULT_SEEDS`
//! (mirroring the stress crate's `FASTER_STRESS_*` conventions) so CI shards
//! explore disjoint schedules while any single failure replays from its
//! printed `(seed, crash_after)` pair.

use faster_core::checkpoint::CheckpointData;
use faster_core::ckpt_manager::{self, CheckpointConfig, CheckpointManager};
use faster_core::maintenance::{run_tick, MaintenanceStats, Policy, PolicyConfig};
use faster_core::{CountStore, FasterKv, FasterKvConfig, OpError, Session};
use faster_hlog::HLogConfig;
use faster_index::IndexConfig;
use faster_storage::{FaultDevice, FaultDomain, MemDevice, TornWrite};
use faster_util::{Address, XorShift64};
use std::collections::HashMap;

/// Keys the seeded workload draws from. Small enough that most keys see
/// several updates per run, large enough to span many hash buckets.
pub const KEYSPACE: u64 = 128;

/// Operations issued before the checkpoint (builds the durable prefix).
const PHASE1_OPS: u64 = 300;

/// Upper bound on post-checkpoint operations: enough to trigger several
/// page flushes (and therefore reach any swept crash point), bounded so a
/// crashed device — whose frozen `flushed_until` eventually wedges
/// `allocate()` — is never asked for more than a buffer's worth of tail.
const PHASE2_OPS_MAX: u64 = 3000;

/// Operations issued *after* the crash fires, exercising the refuse-all
/// path without outrunning the circular buffer.
const POST_CRASH_OPS: u64 = 48;

/// The seed range for this process: `FASTER_FAULT_SEED_BASE ..
/// FASTER_FAULT_SEED_BASE + FASTER_FAULT_SEEDS`, defaulting to
/// `0..default_count`.
pub fn fault_seed_range(default_count: u64) -> std::ops::Range<u64> {
    let base = std::env::var("FASTER_FAULT_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0u64);
    let count = std::env::var("FASTER_FAULT_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_count);
    base..base + count
}

/// Small pages so the swept crash points land inside real page-flush
/// traffic: 1 KiB pages hold ~42 `<u64, u64>` records, so a few hundred
/// operations cross several page boundaries.
pub fn harness_cfg() -> FasterKvConfig {
    FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 10, buffer_pages: 8, mutable_pages: 6, io_threads: 2 })
        .with_max_sessions(16)
        .with_refresh_interval(32)
}

/// What a single crash/recovery run observed, for sweep-level assertions.
#[derive(Debug)]
pub struct CrashRunReport {
    /// Whether the armed crash point actually fired (a far crash point may
    /// sit beyond the writes the bounded phase-2 workload generates).
    pub crashed: bool,
    /// Device writes issued by the time the run finished.
    pub writes_issued: u64,
    /// Keys in the oracle snapshot at checkpoint time.
    pub snapshot_keys: usize,
}

/// One seeded workload step against both the store and the oracle.
///
/// Mirrors [`CountStore`] semantics: upsert replaces, RMW adds the input
/// (initializing to the input for absent keys), delete removes.
fn apply_op(
    session: &Session<u64, u64, CountStore>,
    oracle: &mut HashMap<u64, u64>,
    rng: &mut XorShift64,
) {
    let key = rng.next_u64() % KEYSPACE;
    match rng.next_u64() % 8 {
        0..=2 => {
            let value = rng.next_u64() | 1;
            // Mirror only applied ops: a store degraded mid-workload refuses
            // mutations, and the oracle must not drift ahead of it.
            if session.upsert(&key, &value).is_ok() {
                oracle.insert(key, value);
            }
        }
        3..=4 => {
            let input = (rng.next_u64() % 1000) + 1;
            match session.rmw(&key, &input) {
                Ok(_) => *oracle.entry(key).or_insert(0) += input,
                Err(OpError::Pending(_)) => {
                    session.complete_pending(true);
                    *oracle.entry(key).or_insert(0) += input;
                }
                Err(_) => {}
            }
        }
        5 => {
            if session.delete(&key).is_ok() {
                oracle.remove(&key);
            }
        }
        _ => {
            // Churn insert over a wide keyspace: mostly-fresh keys force tail
            // allocation every time, so the log keeps growing (and flushing)
            // even once every hot key sits in the in-place-updatable region.
            // Without this the post-checkpoint tail stalls and the swept
            // crash points would never see flush traffic.
            let churn_key = KEYSPACE + (rng.next_u64() % 4096);
            let value = rng.next_u64() | 1;
            if session.upsert(&churn_key, &value).is_ok() {
                oracle.insert(churn_key, value);
            }
        }
    }
}

/// Runs one full crash/recovery case and checks every invariant, panicking
/// with `(seed, crash_after)` context on any violation.
///
/// `crash_after` counts device writes from the moment the checkpoint
/// completes; `torn` selects how much of the crash-point write survives.
/// When `drop_phase2_write` is set, one post-checkpoint flush before the
/// crash point is silently dropped (acknowledged but never persisted) —
/// recovery must not depend on it, since everything it held was post-t2.
pub fn run_crash_recovery_case(
    seed: u64,
    crash_after: u64,
    torn: TornWrite,
    drop_phase2_write: bool,
) -> CrashRunReport {
    let ctx = format!("seed={seed} crash_after={crash_after} torn={torn:?} drop={drop_phase2_write}");
    let mem = MemDevice::new(2);
    let fault = FaultDevice::wrap(mem);
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(harness_cfg(), CountStore, fault.clone());
    let mut rng = XorShift64::new(seed);
    let mut oracle: HashMap<u64, u64> = HashMap::new();

    // Phase 1: build the durable prefix. The session must be dropped before
    // checkpoint(): the durability wait is epoch-gated and an idle guard on
    // this thread would stall it.
    {
        let session = store.start_session();
        for _ in 0..PHASE1_OPS {
            apply_op(&session, &mut oracle, &mut rng);
        }
        session.complete_pending(true);
    }
    let ckpt = store.checkpoint();
    let snapshot = oracle.clone();

    // Round-trip the checkpoint through its serialized form, as a real
    // recovery would read it off durable storage.
    let ckpt = CheckpointData::from_bytes(&ckpt.to_bytes())
        .unwrap_or_else(|e| panic!("[{ctx}] serialized checkpoint failed to parse: {e}"));

    // Phase 2: arm the crash, then churn until it fires (plus a bounded
    // post-crash tail proving the store degrades without panicking).
    if drop_phase2_write && crash_after > 0 {
        fault.drop_write_at(rng.next_u64() % crash_after);
    }
    fault.arm_crash(crash_after, torn);
    {
        let session = store.start_session();
        let mut post_crash = 0u64;
        for _ in 0..PHASE2_OPS_MAX {
            apply_op(&session, &mut oracle, &mut rng);
            if fault.crashed() {
                post_crash += 1;
                if post_crash > POST_CRASH_OPS {
                    break;
                }
            }
        }
        // Pending I/O against the crashed device must drain (bounded
        // retries turn persistent failures into `CompletedOp::Failed`),
        // never hang.
        session.complete_pending(true);
    }
    let report = CrashRunReport {
        crashed: fault.crashed(),
        writes_issued: fault.writes_issued(),
        snapshot_keys: snapshot.len(),
    };
    drop(store);

    // Recovery: only the bytes the persistence model admits survive on the
    // inner device. Everything at or past the crash-point write is gone
    // (save the torn prefix), yet the checkpoint promised nothing past t2.
    let survivor = fault.inner();
    let recovered: FasterKv<u64, u64, CountStore> =
        FasterKv::recover(harness_cfg(), CountStore, survivor, &ckpt);
    {
        let session = recovered.start_session();
        // Check the whole hot keyspace (catching both lost acknowledged
        // writes *and* resurrected deletes / leaked post-t2 records) plus
        // every churn key the snapshot promised durable.
        let mut check: Vec<u64> = (0..KEYSPACE).collect();
        check.extend(snapshot.keys().copied().filter(|&k| k >= KEYSPACE));
        for key in check {
            let got = crate::read_blocking(&session, key);
            let want = snapshot.get(&key).copied();
            assert_eq!(
                got, want,
                "[{ctx}] post-recovery key {key}: got {got:?}, oracle snapshot has {want:?}"
            );
        }
        // The recovered store must accept and serve new traffic.
        let probe = KEYSPACE + 7777;
        session.upsert(&probe, &424_242).expect("recovered store must accept writes");
        assert_eq!(
            crate::read_blocking(&session, probe),
            Some(424_242),
            "[{ctx}] recovered store rejected fresh traffic"
        );
    }
    report
}

/// Operations issued between the baseline generation and the crash-swept
/// one, so the in-flight checkpoint has real dirty pages to flush.
const PHASE1B_OPS: u64 = 220;

/// Where inside the swept `checkpoint_store()` call the crash fires.
#[derive(Debug, Clone, Copy)]
pub enum CkptCrashPoint {
    /// Crash at the k-th device write issued after the call starts, counted
    /// across the *interleaved* log + checkpoint device stream (they share a
    /// [`FaultDomain`]), tearing that write per [`TornWrite`].
    Write(u64, TornWrite),
    /// Crash at the j-th flush barrier issued after the call starts.
    Flush(u64),
}

/// What one in-checkpoint crash case observed, for sweep-level bookkeeping.
#[derive(Debug)]
pub struct CkptSweepReport {
    /// Whether the armed crash point fired.
    pub crashed: bool,
    /// Whether `checkpoint_store()` acknowledged the swept generation.
    pub commit_ok: bool,
    /// Generation recovery arbitration selected.
    pub recovered_gen: u64,
    /// Fallback steps recovery took (newer generations skipped).
    pub fallbacks: usize,
    /// Device writes the checkpoint call issued (use a `point = None` dry
    /// run to bound the write sweep — submission order is deterministic
    /// because the harness drives the store single-threaded).
    pub ckpt_writes: u64,
    /// Flush barriers the checkpoint call issued (dry run bounds the flush
    /// sweep the same way).
    pub ckpt_flushes: u64,
}

/// Runs one crash *inside* `checkpoint_store()` and checks the atomic-commit
/// contract end to end:
///
/// 1. a baseline generation commits, then more traffic runs, then a second
///    `checkpoint_store()` is attempted with the crash armed at `point`;
/// 2. recovery (manifest arbitration over the surviving images of both
///    devices) must always succeed — to the in-flight generation if its
///    commit landed, else to the baseline generation;
/// 3. the recovered state must equal the matching oracle snapshot *exactly*
///    (including deletes) over the whole touched keyspace;
/// 4. `Ok` from `checkpoint_store()` one-directionally implies the in-flight
///    generation is the one recovered (an `Err` may still have persisted its
///    manifest — a torn full-prefix write acks failure yet survives);
/// 5. the recovered store accepts fresh traffic, and checkpoint-aware GC
///    stays clamped to the retained chain's oldest `begin`.
pub fn run_in_checkpoint_crash_case(seed: u64, point: Option<CkptCrashPoint>) -> CkptSweepReport {
    let ctx = format!("seed={seed} point={point:?}");
    let domain = FaultDomain::new();
    let log_fault = FaultDevice::wrap_in_domain(MemDevice::new(2), &domain);
    let ckpt_fault = FaultDevice::wrap_in_domain(MemDevice::new(1), &domain);
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(harness_cfg(), CountStore, log_fault.clone());
    let mgr = CheckpointManager::new(ckpt_fault.clone(), CheckpointConfig::default());
    let mut rng = XorShift64::new(seed);
    let mut oracle: HashMap<u64, u64> = HashMap::new();

    // Baseline generation: committed fault-free, the fallback target.
    {
        let session = store.start_session();
        for _ in 0..PHASE1_OPS {
            apply_op(&session, &mut oracle, &mut rng);
        }
        session.complete_pending(true);
    }
    let gen1 = mgr
        .checkpoint_store(&store)
        .unwrap_or_else(|e| panic!("[{ctx}] baseline generation must commit: {e}"));
    let snap1 = oracle.clone();

    // Fresh traffic so the swept checkpoint has dirty pages to flush.
    {
        let session = store.start_session();
        for _ in 0..PHASE1B_OPS {
            apply_op(&session, &mut oracle, &mut rng);
        }
        session.complete_pending(true);
    }
    let snap2 = oracle.clone();

    // Arm the crash *now*: every write/flush from here on belongs to the
    // checkpoint call being swept.
    let w0 = domain.writes_issued();
    let f0 = domain.flushes_issued();
    match point {
        Some(CkptCrashPoint::Write(k, torn)) => domain.arm_crash(k, torn),
        Some(CkptCrashPoint::Flush(j)) => domain.arm_crash_at_flush(j),
        None => {}
    }
    let attempt = mgr.checkpoint_store(&store);
    let report_writes = domain.writes_issued() - w0;
    let report_flushes = domain.flushes_issued() - f0;
    let crashed = domain.crashed();
    let commit_ok = attempt.is_ok();
    if point.is_none() {
        assert!(commit_ok, "[{ctx}] fault-free checkpoint failed: {:?}", attempt.err());
    }
    drop(store);
    drop(mgr);

    // The inner devices hold exactly the surviving byte images; settle
    // their worker queues before reading them back.
    let log_img = log_fault.inner();
    let ckpt_img = ckpt_fault.inner();
    log_img.flush_barrier().unwrap();
    ckpt_img.flush_barrier().unwrap();

    let (recovered, mgr2, rec) = ckpt_manager::recover_store::<u64, u64, CountStore>(
        harness_cfg(),
        CountStore,
        log_img,
        ckpt_img,
        CheckpointConfig::default(),
    )
    .unwrap_or_else(|e| panic!("[{ctx}] recovery must always find a generation: {e}"));

    // Which oracle snapshot must the store match? The in-flight generation
    // iff its manifest landed, else the baseline — never anything else.
    let snapshot = if rec.gen == gen1 + 1 {
        &snap2
    } else if rec.gen == gen1 {
        &snap1
    } else {
        panic!("[{ctx}] recovered to unexpected generation {} (baseline {gen1})", rec.gen);
    };
    if commit_ok {
        assert_eq!(
            rec.gen,
            gen1 + 1,
            "[{ctx}] checkpoint_store acked Ok but recovery fell back ({} skipped)",
            rec.fallbacks()
        );
    }

    {
        let session = recovered.start_session();
        let mut check: Vec<u64> = (0..KEYSPACE).collect();
        check.extend(snap1.keys().chain(snap2.keys()).copied().filter(|&k| k >= KEYSPACE));
        check.sort_unstable();
        check.dedup();
        for key in check {
            let got = crate::read_blocking(&session, key);
            let want = snapshot.get(&key).copied();
            assert_eq!(
                got, want,
                "[{ctx}] gen {} key {key}: got {got:?}, oracle has {want:?}",
                rec.gen
            );
        }
        let probe = KEYSPACE + 8888;
        session.upsert(&probe, &515_151).expect("recovered store must accept writes");
        assert_eq!(
            crate::read_blocking(&session, probe),
            Some(515_151),
            "[{ctx}] recovered store rejected fresh traffic"
        );
    }

    // GC satellite, exercised under every swept point: truncation through
    // the manager clamps to the retained chain's oldest begin.
    let bound = mgr2
        .safe_truncation_bound()
        .unwrap_or_else(|| panic!("[{ctx}] recovered manager retains no generation"));
    let clamped = mgr2.gc_truncate(&recovered, Address::new(bound.raw() + (1 << 20)));
    assert!(
        clamped <= bound,
        "[{ctx}] gc_truncate escaped the retention clamp: {clamped:?} > {bound:?}"
    );

    CkptSweepReport {
        crashed,
        commit_ok,
        recovered_gen: rec.gen,
        fallbacks: rec.fallbacks(),
        ckpt_writes: report_writes,
        ckpt_flushes: report_flushes,
    }
}

// ====================================================== WAL group commit

/// Ops issued before the mid-run checkpoint in the WAL sweep.
const WAL_PHASE1_OPS: usize = 60;
/// Ops issued after the checkpoint (the WAL-replay suffix).
const WAL_PHASE2_OPS: usize = 60;

/// Shape for the WAL crash sweep: zero batch window (every op forms its own
/// group, so per-op durability waits return promptly) and tiny segments so
/// the workload crosses several segment boundaries.
pub fn wal_harness_cfg() -> FasterKvConfig {
    harness_cfg().with_wal(faster_wal::WalConfig {
        batch_window: std::time::Duration::ZERO,
        segment_size: 4096,
    })
}

/// Where the swept crash fires, counted across the shared fault domain of
/// all three devices (log + checkpoint + WAL) from the start of the run —
/// so the sweep covers every WAL group write, every flush barrier (WAL,
/// checkpoint, and hybrid-log), and every interleaved data write.
#[derive(Debug, Clone, Copy)]
pub enum WalCrashPoint {
    Write(u64, TornWrite),
    Flush(u64),
}

/// What one WAL crash case observed.
#[derive(Debug)]
pub struct WalSweepReport {
    /// Whether the armed crash fired.
    pub crashed: bool,
    /// Ops whose per-op durability wait returned `Ok` (a dense prefix of
    /// issue order — the session stops issuing at the first `Err`).
    pub acked: usize,
    /// Ops applied to the in-memory store (acked or not).
    pub issued: usize,
    /// `checkpoint_store` verdict, `None` if the run died before trying.
    pub commit_ok: Option<bool>,
    /// Which oracle prefix the recovered state matched.
    pub matched_prefix: usize,
    /// WAL records the recovery replayed.
    pub wal_replayed: usize,
    /// Domain-wide writes / flush barriers issued (a `point = None` dry run
    /// bounds the sweep ranges).
    pub writes_issued: u64,
    pub flushes_issued: u64,
}

/// Runs one oracle-tracked WAL crash/recovery case and checks the
/// group-commit durability contract:
///
/// 1. every op whose durability wait was acknowledged survives recovery —
///    the recovered state equals the oracle after `N` ops for some `N`
///    with `acked ≤ N ≤ issued` (an unacked group may persist in full, a
///    torn one is cut at its checksum; an acked one may never be lost);
/// 2. the mid-run checkpoint interleaves correctly with WAL replay: the
///    suffix above the generation's recorded cutoff re-applies on top of
///    the recovered checkpoint image, and WAL truncation after the commit
///    never drops records a retained generation still needs;
/// 3. recovery always succeeds (falling back to an empty store + full WAL
///    replay when no generation ever committed), and the recovered store
///    accepts fresh traffic with a working, appendable WAL.
pub fn run_wal_crash_case(seed: u64, point: Option<WalCrashPoint>) -> WalSweepReport {
    let ctx = format!("seed={seed} point={point:?}");
    let domain = FaultDomain::new();
    let log_fault = FaultDevice::wrap_in_domain(MemDevice::new(2), &domain);
    let ckpt_fault = FaultDevice::wrap_in_domain(MemDevice::new(1), &domain);
    let wal_fault = FaultDevice::wrap_in_domain(MemDevice::new(1), &domain);
    match point {
        Some(WalCrashPoint::Write(k, torn)) => domain.arm_crash(k, torn),
        Some(WalCrashPoint::Flush(j)) => domain.arm_crash_at_flush(j),
        None => {}
    }

    let store: FasterKv<u64, u64, CountStore> = FasterKv::new_with_wal(
        wal_harness_cfg(),
        CountStore,
        log_fault.clone(),
        wal_fault.clone(),
    );
    let mgr = CheckpointManager::new(ckpt_fault.clone(), CheckpointConfig::default());
    let mut rng = XorShift64::new(seed);
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    // `states[n]` = oracle after the first `n` ops.
    let mut states: Vec<HashMap<u64, u64>> = vec![oracle.clone()];
    let mut acked = 0usize;
    let mut failed = false;
    let mut commit_ok: Option<bool> = None;

    // Phase 1 → checkpoint → phase 2, stopping at the first un-acked group
    // (the failure is sticky: nothing later can ever become durable).
    {
        let session = store.start_session();
        for _ in 0..WAL_PHASE1_OPS {
            apply_op(&session, &mut oracle, &mut rng);
            states.push(oracle.clone());
            match session.wait_wal_durable() {
                Ok(()) => acked += 1,
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
    }
    if !failed {
        commit_ok = Some(mgr.checkpoint_store(&store).is_ok());
        let session = store.start_session();
        for _ in 0..WAL_PHASE2_OPS {
            apply_op(&session, &mut oracle, &mut rng);
            states.push(oracle.clone());
            match session.wait_wal_durable() {
                Ok(()) => acked += 1,
                Err(_) => break,
            }
        }
        session.complete_pending(false);
    }
    let issued = states.len() - 1;
    let crashed = domain.crashed();
    let writes_issued = domain.writes_issued();
    let flushes_issued = domain.flushes_issued();
    if point.is_none() {
        assert!(!crashed && acked == issued, "[{ctx}] fault-free run lost acks");
        assert_eq!(commit_ok, Some(true), "[{ctx}] fault-free checkpoint failed");
    }
    drop(store);
    drop(mgr);

    // Recover over the surviving byte images of all three devices.
    let log_img = log_fault.inner();
    let ckpt_img = ckpt_fault.inner();
    let wal_img = wal_fault.inner();
    log_img.flush_barrier().unwrap();
    ckpt_img.flush_barrier().unwrap();
    wal_img.flush_barrier().unwrap();
    let rec = ckpt_manager::recover_store_with_wal::<u64, u64, CountStore>(
        wal_harness_cfg(),
        CountStore,
        log_img,
        ckpt_img,
        wal_img,
        CheckpointConfig::default(),
    )
    .unwrap_or_else(|e| panic!("[{ctx}] WAL recovery must always succeed: {e}"));

    // The recovered state must be the oracle after N ops, acked ≤ N ≤
    // issued, over every key any prefix ever touched.
    let mut keys: Vec<u64> = (0..KEYSPACE).collect();
    keys.extend(states.last().unwrap().keys().copied().filter(|&k| k >= KEYSPACE));
    keys.sort_unstable();
    keys.dedup();
    let matched_prefix = {
        let session = rec.store.start_session();
        let got: HashMap<u64, Option<u64>> =
            keys.iter().map(|&k| (k, crate::read_blocking(&session, k))).collect();
        (acked..=issued)
            .find(|&n| {
                keys.iter().all(|k| got[k] == states[n].get(k).copied())
            })
            .unwrap_or_else(|| {
                let n = acked;
                let diff: Vec<String> = keys
                    .iter()
                    .filter(|k| got[*k] != states[n].get(*k).copied())
                    .map(|k| {
                        format!("key {k}: got {:?}, acked-oracle {:?}", got[k], states[n].get(k))
                    })
                    .collect();
                panic!(
                    "[{ctx}] recovered state matches no oracle prefix in [{acked}, {issued}] \
                     (acked={acked} issued={issued} replayed={}); vs acked prefix: {diff:?}",
                    rec.wal_replayed
                )
            })
    };

    // The recovered store must accept fresh traffic and ack its durability
    // through the resumed WAL.
    {
        let session = rec.store.start_session();
        let probe = KEYSPACE + 9999;
        session.upsert(&probe, &616_161).expect("recovered store must accept writes");
        session
            .wait_wal_durable()
            .unwrap_or_else(|e| panic!("[{ctx}] resumed WAL refused a fresh group: {e}"));
        assert_eq!(
            crate::read_blocking(&session, probe),
            Some(616_161),
            "[{ctx}] recovered store rejected fresh traffic"
        );
    }

    WalSweepReport {
        crashed,
        acked,
        issued,
        commit_ok,
        matched_prefix,
        wal_replayed: rec.wal_replayed,
        writes_issued,
        flushes_issued,
    }
}

// ================================================ maintenance-window crashes

/// Where inside the swept maintenance window the crash fires, counted (like
/// [`CkptCrashPoint`]) across the interleaved log + checkpoint device stream
/// of the shared [`FaultDomain`] from the moment the `run_tick` loop starts.
#[derive(Debug, Clone, Copy)]
pub enum MaintCrashPoint {
    /// Crash at the k-th device write issued inside the window, torn per
    /// [`TornWrite`]. The window's writes are the compaction roll's page
    /// flushes plus the policy-triggered checkpoint's blob + manifest.
    Write(u64, TornWrite),
    /// Crash at the j-th flush barrier issued inside the window.
    Flush(u64),
}

/// What one maintenance-window crash case observed.
#[derive(Debug)]
pub struct MaintSweepReport {
    /// Whether the armed crash point fired.
    pub crashed: bool,
    /// Whether the policy-triggered checkpoint acknowledged its generation.
    pub commit_ok: bool,
    /// Generation recovery arbitration selected.
    pub recovered_gen: u64,
    /// Fallback steps recovery took.
    pub fallbacks: usize,
    /// Live records the policy-triggered compaction rolled to the tail.
    pub rolled: u64,
    /// Compactions the window fired (≥ 1 on a dry run).
    pub compactions: u64,
    /// Device writes the window issued (`point = None` dry run bounds the
    /// write sweep; the window is driven single-threaded so the schedule is
    /// deterministic — the sweeps double-check with a second dry run).
    pub maint_writes: u64,
    /// Flush barriers the window issued (dry run bounds the flush sweep).
    pub maint_flushes: u64,
}

/// Policy whose compaction and checkpoint arms fire within a couple of
/// ticks of the harness's scripted dead space, with the probe and
/// read-cache arms disabled — the sweep pins exactly the two actuators
/// whose crash behaviour matters for durability.
fn maint_window_policy() -> Policy {
    Policy::new(PolicyConfig {
        compact_dead_ratio_hi: 0.02,
        compact_resume_ratio: 0.01,
        compact_min_bytes: 64,
        compact_cooldown_ticks: 1,
        ckpt_growth_bytes: 1,
        ckpt_min_interval_ticks: 1,
        min_probe_samples: u64::MAX,
        rc_min_samples: u64::MAX,
        ..PolicyConfig::default()
    })
}

/// Runs one crash *inside a maintenance window* — a `run_tick` loop whose
/// policy triggers a roll-to-tail compaction and then a checkpoint against
/// the store, exactly as the background service would — and checks that
/// background maintenance never weakens the atomic-commit contract:
///
/// 1. a baseline generation commits fault-free, more traffic runs (leaving
///    dead space for the policy to see), then the window runs with the
///    crash armed at `point`;
/// 2. throughout the window the store's begin address stays at or below the
///    manager's safe truncation bound — the actuator's roll/truncate split
///    rolls unclamped but never truncates above the retained chain;
/// 3. recovery must always succeed: to a maintenance-committed generation
///    if one landed, else to the baseline — and because the window runs no
///    foreground ops, *every* post-baseline generation equals the same
///    oracle snapshot, which the recovered store must match exactly;
/// 4. an acked maintenance checkpoint one-directionally implies recovery
///    does not fall back to the baseline;
/// 5. the recovered store accepts fresh traffic and checkpoint-aware GC
///    stays clamped.
pub fn run_maintenance_crash_case(seed: u64, point: Option<MaintCrashPoint>) -> MaintSweepReport {
    let ctx = format!("seed={seed} point={point:?}");
    let domain = FaultDomain::new();
    let log_fault = FaultDevice::wrap_in_domain(MemDevice::new(2), &domain);
    let ckpt_fault = FaultDevice::wrap_in_domain(MemDevice::new(1), &domain);
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(harness_cfg(), CountStore, log_fault.clone());
    let mgr = std::sync::Arc::new(CheckpointManager::new(
        ckpt_fault.clone(),
        CheckpointConfig::default(),
    ));
    let mut rng = XorShift64::new(seed);
    let mut oracle: HashMap<u64, u64> = HashMap::new();

    // Baseline generation: committed fault-free, the fallback target the
    // swept compaction must never orphan.
    {
        let session = store.start_session();
        for _ in 0..PHASE1_OPS {
            apply_op(&session, &mut oracle, &mut rng);
        }
        session.complete_pending(true);
    }
    let gen1 = mgr
        .checkpoint_store(&store)
        .unwrap_or_else(|e| panic!("[{ctx}] baseline generation must commit: {e}"));
    let snap1 = oracle.clone();

    // Churn so the window has dead space to compact and dirty pages to
    // checkpoint; top up (bounded) until some prefix of the log is flushed,
    // since `Compact` only targets below the safe-read-only address.
    {
        let session = store.start_session();
        for _ in 0..PHASE1B_OPS {
            apply_op(&session, &mut oracle, &mut rng);
        }
        let mut extra = 0u32;
        while store.log().safe_read_only_address() <= store.log().begin_address() {
            apply_op(&session, &mut oracle, &mut rng);
            extra += 1;
            assert!(extra < 4096, "[{ctx}] log never flushed a compactable prefix");
        }
        session.complete_pending(true);
    }
    let snap2 = oracle.clone();

    // Arm the crash *now*: every write/flush from here on belongs to the
    // maintenance window being swept.
    let w0 = domain.writes_issued();
    let f0 = domain.flushes_issued();
    match point {
        Some(MaintCrashPoint::Write(k, torn)) => domain.arm_crash(k, torn),
        Some(MaintCrashPoint::Flush(j)) => domain.arm_crash_at_flush(j),
        None => {}
    }

    // The maintenance window: tick the policy against the live store until
    // it has fired (at least) one compaction and attempted one checkpoint.
    // Tick 1 baselines the windowed signals, tick 2 fires the compaction,
    // and the roll's tail growth trips the checkpoint arm a tick later; the
    // cap only guards against a crashed device stalling the signals.
    let acts = store.maintenance_actuators(Some(mgr.clone()));
    let mut policy = maint_window_policy();
    let stats = MaintenanceStats::default();
    for _ in 0..8 {
        run_tick(&mut policy, &*acts, &stats);
        if let Some(bound) = mgr.safe_truncation_bound() {
            assert!(
                store.log().begin_address() <= bound,
                "[{ctx}] maintenance compaction truncated above the retained \
                 chain: begin {:?} > bound {bound:?}",
                store.log().begin_address()
            );
        }
        let attempts = stats.checkpoints.load(std::sync::atomic::Ordering::Relaxed)
            + stats.checkpoint_failures.load(std::sync::atomic::Ordering::Relaxed);
        if stats.compactions.load(std::sync::atomic::Ordering::Relaxed) >= 1 && attempts >= 1 {
            break;
        }
    }
    let maint_writes = domain.writes_issued() - w0;
    let maint_flushes = domain.flushes_issued() - f0;
    let crashed = domain.crashed();
    let compactions = stats.compactions.load(std::sync::atomic::Ordering::Relaxed);
    let rolled = stats.records_rolled.load(std::sync::atomic::Ordering::Relaxed);
    let ckpt_acks = stats.checkpoints.load(std::sync::atomic::Ordering::Relaxed);
    let ckpt_attempts =
        ckpt_acks + stats.checkpoint_failures.load(std::sync::atomic::Ordering::Relaxed);
    let commit_ok = ckpt_acks >= 1;
    if point.is_none() {
        assert!(
            compactions >= 1 && commit_ok,
            "[{ctx}] fault-free window must compact and checkpoint \
             (compactions {compactions}, acked checkpoints {ckpt_acks})"
        );
    }
    drop(acts);
    drop(store);
    drop(mgr);

    // Recover from the surviving byte images of both devices.
    let log_img = log_fault.inner();
    let ckpt_img = ckpt_fault.inner();
    log_img.flush_barrier().unwrap();
    ckpt_img.flush_barrier().unwrap();

    let (recovered, mgr2, rec) = ckpt_manager::recover_store::<u64, u64, CountStore>(
        harness_cfg(),
        CountStore,
        log_img,
        ckpt_img,
        CheckpointConfig::default(),
    )
    .unwrap_or_else(|e| panic!("[{ctx}] recovery must always find a generation: {e}"));

    // The window ran no foreground ops, so every generation the maintenance
    // checkpoint(s) produced carries the same logical state: the oracle at
    // window entry. Only the baseline maps to the earlier snapshot.
    let snapshot = if rec.gen == gen1 {
        &snap1
    } else if rec.gen > gen1 && rec.gen <= gen1 + ckpt_attempts {
        &snap2
    } else {
        panic!(
            "[{ctx}] recovered to unexpected generation {} (baseline {gen1}, \
             {ckpt_attempts} maintenance attempts)",
            rec.gen
        );
    };
    if commit_ok {
        assert!(
            rec.gen > gen1,
            "[{ctx}] maintenance checkpoint acked Ok but recovery fell back \
             to the baseline ({} skipped)",
            rec.fallbacks()
        );
    }

    {
        let session = recovered.start_session();
        let mut check: Vec<u64> = (0..KEYSPACE).collect();
        check.extend(snap1.keys().chain(snap2.keys()).copied().filter(|&k| k >= KEYSPACE));
        check.sort_unstable();
        check.dedup();
        for key in check {
            let got = crate::read_blocking(&session, key);
            let want = snapshot.get(&key).copied();
            assert_eq!(
                got, want,
                "[{ctx}] gen {} key {key}: got {got:?}, oracle has {want:?}",
                rec.gen
            );
        }
        let probe = KEYSPACE + 6666;
        session.upsert(&probe, &313_131).expect("recovered store must accept writes");
        assert_eq!(
            crate::read_blocking(&session, probe),
            Some(313_131),
            "[{ctx}] recovered store rejected fresh traffic"
        );
    }

    let bound = mgr2
        .safe_truncation_bound()
        .unwrap_or_else(|| panic!("[{ctx}] recovered manager retains no generation"));
    let clamped = mgr2.gc_truncate(&recovered, Address::new(bound.raw() + (1 << 20)));
    assert!(
        clamped <= bound,
        "[{ctx}] gc_truncate escaped the retention clamp: {clamped:?} > {bound:?}"
    );

    MaintSweepReport {
        crashed,
        commit_ok,
        recovered_gen: rec.gen,
        fallbacks: rec.fallbacks(),
        rolled,
        compactions,
        maint_writes,
        maint_flushes,
    }
}
