//! Integration-test support: shared helpers for driving a FASTER store in
//! cross-crate tests.

use faster_core::{Functions, OpError, Outcome, Session};
use faster_util::Pod;

pub mod fault_harness;

/// Reads a key, driving the pending path to completion when needed.
pub fn read_blocking<V: Pod, F>(session: &Session<u64, V, F>, key: u64) -> Option<F::Output>
where
    F: Functions<u64, V, Input = u64>,
{
    match read_result(session, key) {
        Ok(r) => r,
        Err(e) => panic!("read of {key} failed after retries: {e}"),
    }
}

/// Like [`read_blocking`], but surfaces a failed pending read as `Err`
/// instead of panicking — resilience tests assert on the typed error
/// (`IoError::Corrupt`, exhausted-retry `IoError::Failed`, ...).
pub fn read_result<V: Pod, F>(
    session: &Session<u64, V, F>,
    key: u64,
) -> Result<Option<F::Output>, faster_storage::IoError>
where
    F: Functions<u64, V, Input = u64>,
{
    match session.read(&key, &0) {
        Ok(Outcome::Value(v)) => Ok(Some(v)),
        Ok(Outcome::Done) => unreachable!("reads never complete as Done"),
        Err(OpError::NotFound) => Ok(None),
        Err(OpError::Pending(id)) => {
            let done = session.complete_pending(true);
            for c in done {
                if c.id != id {
                    continue;
                }
                return match c.result {
                    Ok(Outcome::Value(v)) => Ok(Some(v)),
                    Ok(Outcome::Done) => unreachable!("reads never complete as Done"),
                    Err(OpError::NotFound) => Ok(None),
                    Err(OpError::Io(e)) => Err(e),
                    Err(e) => panic!("pending read {id} completed oddly: {e}"),
                };
            }
            panic!("pending read {id} never completed");
        }
        Err(e) => panic!("read of {key} refused: {e}"),
    }
}

/// RMW that always runs to completion.
pub fn rmw_blocking<V: Pod, F>(session: &Session<u64, V, F>, key: u64, input: u64)
where
    F: Functions<u64, V, Input = u64>,
{
    if let Err(OpError::Pending(_)) = session.rmw(&key, &input) {
        session.complete_pending(true);
    }
}
