//! Integration-test support: shared helpers for driving a FASTER store in
//! cross-crate tests.

use faster_core::{CompletedOp, Functions, ReadResult, RmwResult, Session};
use faster_util::Pod;

pub mod fault_harness;

/// Reads a key, driving the pending path to completion when needed.
pub fn read_blocking<V: Pod, F>(session: &Session<u64, V, F>, key: u64) -> Option<F::Output>
where
    F: Functions<u64, V, Input = u64>,
{
    match session.read(&key, &0) {
        ReadResult::Found(v) => Some(v),
        ReadResult::NotFound => None,
        ReadResult::Pending(id) => {
            let done = session.complete_pending(true);
            for op in done {
                match op {
                    CompletedOp::Read { id: did, result } if did == id => return result,
                    CompletedOp::Failed { id: did, error } if did == id => {
                        panic!("pending read {id} failed after retries: {error}")
                    }
                    _ => {}
                }
            }
            panic!("pending read {id} never completed");
        }
    }
}

/// Like [`read_blocking`], but surfaces a failed pending read as `Err`
/// instead of panicking — resilience tests assert on the typed error
/// (`IoError::Corrupt`, exhausted-retry `IoError::Failed`, ...).
pub fn read_result<V: Pod, F>(
    session: &Session<u64, V, F>,
    key: u64,
) -> Result<Option<F::Output>, faster_storage::IoError>
where
    F: Functions<u64, V, Input = u64>,
{
    match session.read(&key, &0) {
        ReadResult::Found(v) => Ok(Some(v)),
        ReadResult::NotFound => Ok(None),
        ReadResult::Pending(id) => {
            let done = session.complete_pending(true);
            for op in done {
                match op {
                    CompletedOp::Read { id: did, result } if did == id => return Ok(result),
                    CompletedOp::Failed { id: did, error } if did == id => return Err(error),
                    _ => {}
                }
            }
            panic!("pending read {id} never completed");
        }
    }
}

/// RMW that always runs to completion.
pub fn rmw_blocking<V: Pod, F>(session: &Session<u64, V, F>, key: u64, input: u64)
where
    F: Functions<u64, V, Input = u64>,
{
    if let RmwResult::Pending(_) = session.rmw(&key, &input) {
        session.complete_pending(true);
    }
}
