//! Property-based equivalence: a FASTER store must behave exactly like a
//! `HashMap` model under arbitrary operation sequences — including when the
//! log spills to storage and reads go asynchronous.

use faster_core::{BlindKv, FasterKv, FasterKvConfig};
use faster_hlog::HLogConfig;
use faster_index::IndexConfig;
use faster_integration_tests::{read_blocking, rmw_blocking};
use faster_storage::MemDevice;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum ModelOp {
    Upsert(u64, u64),
    Rmw(u64, u64),
    Read(u64),
    Delete(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = ModelOp> {
    prop_oneof![
        (0..key_space, any::<u64>()).prop_map(|(k, v)| ModelOp::Upsert(k, v)),
        (0..key_space, any::<u64>()).prop_map(|(k, v)| ModelOp::Rmw(k, v)),
        (0..key_space).prop_map(ModelOp::Read),
        (0..key_space).prop_map(ModelOp::Delete),
    ]
}

fn tiny_config() -> FasterKvConfig {
    FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 4, tag_bits: 15, max_resize_chunks: 2 })
        // Minuscule buffer so sequences regularly cross page boundaries and
        // evict to the device.
        .with_log(HLogConfig { page_bits: 9, buffer_pages: 4, mutable_pages: 2, io_threads: 1 })
        .with_max_sessions(4)
        .with_refresh_interval(8)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn store_matches_hashmap_model(ops in proptest::collection::vec(op_strategy(32), 1..400)) {
        let store: FasterKv<u64, u64, BlindKv<u64>> =
            FasterKv::new(tiny_config(), BlindKv::new(), MemDevice::new(1));
        let session = store.start_session();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in &ops {
            match *op {
                ModelOp::Upsert(k, v) => {
                    session.upsert(&k, &v).unwrap();
                    model.insert(k, v);
                }
                ModelOp::Rmw(k, v) => {
                    // BlindKv RMW replaces with the input.
                    rmw_blocking(&session, k, v);
                    model.insert(k, v);
                }
                ModelOp::Read(k) => {
                    prop_assert_eq!(read_blocking(&session, k), model.get(&k).copied(),
                        "read {} diverged", k);
                }
                ModelOp::Delete(k) => {
                    session.delete(&k).unwrap();
                    model.remove(&k);
                }
            }
        }
        // Final audit of every key.
        for k in 0..32u64 {
            prop_assert_eq!(read_blocking(&session, k), model.get(&k).copied(),
                "final state for {} diverged", k);
        }
    }

    #[test]
    fn additive_rmw_matches_model(ops in proptest::collection::vec((0u64..16, 1u64..100), 1..300)) {
        use faster_core::CountStore;
        let store: FasterKv<u64, u64, CountStore> =
            FasterKv::new(tiny_config(), CountStore, MemDevice::new(1));
        let session = store.start_session();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for &(k, inc) in &ops {
            rmw_blocking(&session, k, inc);
            *model.entry(k).or_insert(0) += inc;
        }
        for (k, v) in model {
            prop_assert_eq!(read_blocking(&session, k), Some(v), "counter {}", k);
        }
    }
}
