//! Log garbage collection end to end (Appendix C): expiration and
//! roll-to-tail compaction over spilled data, interleaved with traffic.

use faster_core::{CountStore, FasterKv, FasterKvConfig};
use faster_hlog::HLogConfig;
use faster_index::IndexConfig;
use faster_integration_tests::{read_blocking, rmw_blocking};
use faster_storage::MemDevice;

fn cfg() -> FasterKvConfig {
    FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 8, mutable_pages: 2, io_threads: 2 })
        .with_max_sessions(8)
        .with_refresh_interval(16)
}

#[test]
fn compaction_keeps_counters_exact() {
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, MemDevice::new(2));
    let session = store.start_session();
    // Counters built up over time + churn that pushes them cold.
    for round in 0..20u64 {
        for k in 0..32u64 {
            rmw_blocking(&session, k, 1);
        }
        for k in 0..200u64 {
            session.upsert(&(100_000 + round * 200 + k), &round).unwrap();
        }
    }
    store.log().flush_barrier().unwrap();
    session.refresh();
    let target = store.log().safe_read_only_address();
    let rolled = store.compact_until(target, &session);
    assert!(rolled > 0);
    for k in 0..32u64 {
        assert_eq!(read_blocking(&session, k), Some(20), "counter {k} after compaction");
    }
    // Compact a second time (idempotence at the new begin address).
    let rolled2 = store.compact_until(store.log().safe_read_only_address(), &session);
    let _ = rolled2;
    for k in 0..32u64 {
        assert_eq!(read_blocking(&session, k), Some(20), "counter {k} after second pass");
    }
}

#[test]
fn compaction_drops_deleted_keys() {
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, MemDevice::new(2));
    let session = store.start_session();
    for k in 0..100u64 {
        session.upsert(&k, &(k + 1)).unwrap();
    }
    for k in 0..50u64 {
        session.delete(&k).unwrap();
    }
    for k in 10_000..13_000u64 {
        session.upsert(&k, &1).unwrap();
    }
    store.log().flush_barrier().unwrap();
    session.refresh();
    store.compact_until(store.log().safe_read_only_address(), &session);
    for k in 0..50u64 {
        assert_eq!(read_blocking(&session, k), None, "deleted key {k} must stay gone");
    }
    for k in 50..100u64 {
        assert_eq!(read_blocking(&session, k), Some(k + 1), "live key {k}");
    }
}

#[test]
fn expiration_is_observed_lazily_by_all_ops() {
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, MemDevice::new(2));
    let session = store.start_session();
    for k in 0..100u64 {
        session.upsert(&k, &k).unwrap();
    }
    for k in 10_000..14_000u64 {
        session.upsert(&k, &1).unwrap();
    }
    store.log().flush_barrier().unwrap();
    let head = store.log().head_address();
    assert!(head.raw() > 0);
    store.truncate_until(head);
    // Reads below begin: absent. RMW below begin: reinitialize. Upserts: fine.
    assert_eq!(read_blocking(&session, 1), None);
    rmw_blocking(&session, 2, 5);
    assert_eq!(read_blocking(&session, 2), Some(5), "RMW of expired key reinitializes");
    session.upsert(&3, &33).unwrap();
    assert_eq!(read_blocking(&session, 3), Some(33));
}
