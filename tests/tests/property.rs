//! Cross-crate property-based tests of core invariants.

use faster_core::checkpoint::CheckpointData;
use faster_core::record::RecordRef;
use faster_core::VarValue;
use faster_index::{CreateOutcome, HashIndex, IndexCheckpoint, IndexConfig};
use faster_epoch::Epoch;
use faster_util::{Address, KeyHash};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The §3.2 invariant, model-checked: after any sequence of inserts and
    /// deletes, each (offset, tag) has at most one visible entry and the
    /// index agrees with a map model keyed by (bucket, tag).
    #[test]
    fn index_matches_class_model(ops in proptest::collection::vec((0u64..500, any::<bool>()), 1..300)) {
        let index = HashIndex::new(
            IndexConfig { k_bits: 3, tag_bits: 4, max_resize_chunks: 2 },
            Epoch::new(4),
        );
        let mut model: HashMap<(usize, u16), u64> = HashMap::new();
        for &(key, is_insert) in &ops {
            let h = KeyHash::of_u64(key);
            let class = (h.bucket_index(3), h.tag(3, 4));
            if is_insert {
                let addr = 64 + key * 8;
                match index.find_or_create_tag(h, None) {
                    CreateOutcome::Created(c) => { c.finalize(Address::new(addr)); }
                    CreateOutcome::Found(slot) => {
                        let cur = slot.load();
                        slot.cas_address(cur, Address::new(addr)).unwrap();
                    }
                }
                model.insert(class, addr);
            } else if let Some(slot) = index.find_tag(h, None) {
                let cur = slot.load();
                slot.cas_delete(cur).unwrap();
                model.remove(&class);
            } else {
                prop_assert!(!model.contains_key(&class));
            }
        }
        // Compare every class.
        for key in 0u64..500 {
            let h = KeyHash::of_u64(key);
            let class = (h.bucket_index(3), h.tag(3, 4));
            let got = index.find_tag(h, None).map(|s| s.load().address().raw());
            prop_assert_eq!(got, model.get(&class).copied(), "class {:?}", class);
        }
        prop_assert_eq!(index.count_entries(), model.len());
    }

    /// Addresses round-trip through every page-bits decomposition.
    #[test]
    fn address_page_offset_round_trip(raw in 0u64..(1 << 48), page_bits in 6u32..30) {
        let a = Address::new(raw);
        let rebuilt = Address::from_page_offset(a.page(page_bits), a.offset(page_bits), page_bits);
        prop_assert_eq!(rebuilt, a);
    }

    /// Record images round-trip through raw bytes for arbitrary contents.
    #[test]
    fn record_parse_round_trip(prev in 0u64..(1 << 48), key: u64, value: u64,
                               tomb: bool, delta: bool) {
        use faster_core::record::{RecordHeader, DELTA_BIT, TOMBSTONE_BIT};
        let mut buf = vec![0u8; RecordRef::<u64, u64>::size()];
        {
            let r = unsafe { RecordRef::<u64, u64>::from_raw(buf.as_mut_ptr()) };
            let mut h = RecordHeader::new(Address::new(prev));
            if tomb { h = h.with(TOMBSTONE_BIT); }
            if delta { h = h.with(DELTA_BIT); }
            r.init_header(h);
            r.init_key(&key);
            unsafe { *r.value_mut() = value };
        }
        let (h, k, v) = RecordRef::<u64, u64>::parse_bytes(&buf).expect("live record");
        prop_assert_eq!(h.prev(), Address::new(prev));
        prop_assert_eq!(h.is_tombstone(), tomb);
        prop_assert_eq!(h.is_delta(), delta);
        prop_assert_eq!(k, key);
        prop_assert_eq!(v, value);
    }

    /// Checkpoint metadata survives arbitrary contents.
    #[test]
    fn checkpoint_bytes_round_trip(t1 in 0u64..(1<<48), t2 in 0u64..(1<<48),
                                   begin in 0u64..(1<<48),
                                   entries in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..50),
                                   k_bits in 1u8..30, tag_bits in 0u8..16) {
        let data = CheckpointData {
            t1: Address::new(t1.min(t2)),
            t2: Address::new(t2.max(t1)),
            begin: Address::new(begin),
            index: IndexCheckpoint { k_bits, tag_bits: tag_bits.min(15), entries },
        };
        let parsed = CheckpointData::from_bytes(&data.to_bytes()).expect("round trip");
        prop_assert_eq!(parsed, data);
    }

    /// VarValue round-trips arbitrary payloads up to capacity.
    #[test]
    fn var_value_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v: VarValue<64> = VarValue::new(&bytes);
        prop_assert_eq!(v.as_bytes(), &bytes[..]);
        prop_assert_eq!(v.len(), bytes.len());
    }

    /// Every cache policy's miss count is bounded below by the number of
    /// distinct keys (cold misses) and above by the trace length.
    #[test]
    fn cache_policies_miss_bounds(trace in proptest::collection::vec(0u64..64, 1..400),
                                  cap in 1usize..32) {
        use faster_cachesim::*;
        let distinct = trace.iter().collect::<std::collections::HashSet<_>>().len() as u64;
        let policies: Vec<Box<dyn CachePolicy>> = vec![
            Box::new(Fifo::new(cap)),
            Box::new(Lru::new(cap)),
            Box::new(LruK::new(cap, 2)),
            Box::new(Clock::new(cap)),
            Box::new(HLog::new(cap, 0.9)),
        ];
        for mut p in policies {
            let mut misses = 0u64;
            for &k in &trace {
                if !p.access(k) { misses += 1; }
            }
            prop_assert!(misses >= distinct, "{}: misses {} < distinct {}", p.name(), misses, distinct);
            prop_assert!(misses <= trace.len() as u64);
            // With capacity >= distinct keys, only cold misses occur
            // (HLOG excepted: replication can evict early).
            if cap as u64 >= 2 * distinct {
                prop_assert_eq!(misses, distinct, "{} with ample capacity", p.name());
            }
        }
    }

    /// The B+-tree baseline agrees with a BTreeMap model.
    #[test]
    fn btree_matches_model(ops in proptest::collection::vec((0u64..200, 0u8..3, any::<u64>()), 1..400)) {
        let tree: faster_baselines::BTreeIndex<u64> = faster_baselines::BTreeIndex::new();
        let mut model = std::collections::BTreeMap::new();
        for &(k, op, v) in &ops {
            match op {
                0 => { tree.upsert(k, v); model.insert(k, v); }
                1 => { prop_assert_eq!(tree.delete(k), model.remove(&k).is_some()); }
                _ => { prop_assert_eq!(tree.get(k), model.get(&k).copied()); }
            }
        }
        let scan = tree.range(0, u64::MAX);
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(scan, expect);
    }
}
