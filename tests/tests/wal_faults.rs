//! Crash sweeps and durability-contract tests for the group-committed WAL
//! (DESIGN.md §10).
//!
//! The tentpole sweeps arm a crash at **every device write and every flush
//! barrier the whole run issues** — WAL group writes and barriers, hybrid-
//! log page flushes, and the mid-run checkpoint's blob/manifest traffic all
//! share one `FaultDomain`. Each swept point recovers (checkpoint
//! arbitration + WAL suffix replay) and must land exactly on an oracle
//! prefix no shorter than the acked one: an acked group commit may never
//! be lost, an un-acked one may persist in full or be cut at its checksum.
//!
//! Sharded via `FASTER_FAULT_SEED_BASE` / `FASTER_FAULT_SEEDS` like the
//! other fault sweeps; failures print their `(seed, point)` for replay.

use faster_core::ckpt_manager::{self, CheckpointConfig, CheckpointManager};
use faster_core::{CountStore, FasterKv};
use faster_integration_tests::fault_harness::{
    fault_seed_range, run_wal_crash_case, wal_harness_cfg, WalCrashPoint, KEYSPACE,
};
use faster_integration_tests::read_blocking as session_read;
use faster_storage::{DeviceStats, FaultDevice, IoError, MemDevice, Sqe, SqeOp, TornWrite};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tentpole sweep, write axis: crash at every device write the run issues,
/// cycling the torn-write model so the sweep sees nothing-persisted,
/// byte-torn, and sector-torn WAL group writes (a byte-torn group is what
/// the per-record checksum cut is for).
#[test]
fn wal_write_crash_sweep() {
    let mut fired = 0u64;
    let mut cases = 0u64;
    let mut lost_tail = 0u64;
    for seed in fault_seed_range(2) {
        let dry = run_wal_crash_case(seed, None);
        assert!(
            dry.writes_issued > 20,
            "seed {seed}: dry run issued only {} writes — WAL groups missing?",
            dry.writes_issued
        );
        // Background flush threads make exact write interleaving (and so
        // whether a far point fires) nondeterministic; stride the axis to
        // bound runtime and assert aggregate coverage instead of per-case.
        let stride = (dry.writes_issued / 64).max(1);
        for k in (0..dry.writes_issued).step_by(stride as usize) {
            let torn = match k % 3 {
                0 => TornWrite::Nothing,
                1 => TornWrite::Bytes(((seed.wrapping_mul(37) + k * 11) % 4000) as usize),
                _ => TornWrite::SeededSectors { seed: seed ^ (k << 9) },
            };
            let report = run_wal_crash_case(seed, Some(WalCrashPoint::Write(k, torn)));
            cases += 1;
            if report.crashed {
                fired += 1;
            }
            if report.issued > report.acked {
                lost_tail += 1;
            }
            assert!(
                report.matched_prefix >= report.acked,
                "seed {seed} write {k}: matched prefix {} below acked {}",
                report.matched_prefix,
                report.acked
            );
        }
    }
    assert!(cases >= 16, "write sweep ran only {cases} cases");
    assert!(fired * 2 >= cases, "only {fired}/{cases} armed write points fired");
    assert!(lost_tail > 0, "no swept write point ever cut an un-acked tail");
}

/// Tentpole sweep, flush axis: crash at every flush barrier — each WAL
/// group commit's fsync edge, plus the checkpoint's and hybrid log's. A
/// crashed barrier returns `Err`, so the group it was committing may never
/// ack; recovery must still land on a ≥-acked oracle prefix.
#[test]
fn wal_flush_crash_sweep() {
    let mut fired = 0u64;
    let mut cases = 0u64;
    for seed in fault_seed_range(2) {
        let dry = run_wal_crash_case(seed, None);
        assert!(
            dry.flushes_issued > 20,
            "seed {seed}: dry run issued only {} barriers — group commits missing?",
            dry.flushes_issued
        );
        let stride = (dry.flushes_issued / 64).max(1);
        for j in (0..dry.flushes_issued).step_by(stride as usize) {
            let report = run_wal_crash_case(seed, Some(WalCrashPoint::Flush(j)));
            cases += 1;
            if report.crashed {
                fired += 1;
                // The crashing barrier refused its group: the workload must
                // have stopped acking at or before the crash.
                assert!(
                    report.acked <= report.issued,
                    "seed {seed} flush {j}: acked {} beyond issued {}",
                    report.acked,
                    report.issued
                );
            }
        }
    }
    assert!(cases >= 16, "flush sweep ran only {cases} cases");
    assert!(fired * 2 >= cases, "only {fired}/{cases} armed flush points fired");
}

/// Fault-free restart: every acked op survives a clean shutdown with **no
/// checkpoint at all** — the store rebuilds from the WAL alone.
#[test]
fn wal_alone_recovers_full_state() {
    let report = run_wal_crash_case(0xC0FFEE, None);
    assert_eq!(report.acked, report.issued);
    assert_eq!(report.matched_prefix, report.issued, "clean restart lost acked ops");
}

/// Checkpoint/WAL interleaving: the generation records its cutoff, recovery
/// replays only the suffix above it, and truncation after a later
/// checkpoint never drops records a retained generation still needs.
#[test]
fn checkpoint_records_cutoff_and_replays_only_the_suffix() {
    let log_dev: Arc<dyn Device> = MemDevice::new(2);
    let ckpt_dev: Arc<dyn Device> = MemDevice::new(1);
    let wal_dev: Arc<dyn Device> = MemDevice::new(1);
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new_with_wal(wal_harness_cfg(), CountStore, log_dev.clone(), wal_dev.clone());
    let mgr = CheckpointManager::new(ckpt_dev.clone(), CheckpointConfig::default());

    {
        let session = store.start_session();
        for k in 0..KEYSPACE {
            let _ = session.upsert(&k, &(k + 1));
        }
        session.wait_wal_durable().unwrap();
    }
    mgr.checkpoint_store(&store).expect("fault-free commit");
    let gen = mgr.generations().pop().unwrap();
    assert_eq!(gen.wal_lsn, KEYSPACE, "cutoff must cover every pre-checkpoint append");

    // Suffix: updates over half the keyspace, plus one delete.
    {
        let session = store.start_session();
        for k in 0..KEYSPACE / 2 {
            let _ = session.upsert(&k, &(k + 1000));
        }
        let _ = session.delete(&7);
        session.wait_wal_durable().unwrap();
    }
    drop(store);
    drop(mgr);
    log_dev.flush_barrier().unwrap();
    ckpt_dev.flush_barrier().unwrap();
    wal_dev.flush_barrier().unwrap();

    let rec = ckpt_manager::recover_store_with_wal::<u64, u64, CountStore>(
        wal_harness_cfg(),
        CountStore,
        log_dev,
        ckpt_dev,
        wal_dev,
        CheckpointConfig::default(),
    )
    .expect("recovery");
    assert_eq!(rec.generation.as_ref().map(|r| r.gen), Some(gen.gen));
    assert_eq!(
        rec.wal_replayed,
        (KEYSPACE / 2 + 1) as usize,
        "replay must cover exactly the post-checkpoint suffix"
    );
    let session = rec.store.start_session();
    for k in 0..KEYSPACE {
        let want = if k == 7 {
            None
        } else if k < KEYSPACE / 2 {
            Some(k + 1000)
        } else {
            Some(k + 1)
        };
        assert_eq!(session_read(&session, k), want, "key {k}");
    }
}

/// A second checkpoint advances the cutoff past the whole log: recovery
/// then replays nothing, and the truncated WAL still recovers cleanly
/// (scan skips reclaimed front segments).
#[test]
fn truncation_after_checkpoint_leaves_wal_recoverable() {
    let log_dev: Arc<dyn Device> = MemDevice::new(2);
    let ckpt_dev: Arc<dyn Device> = MemDevice::new(1);
    let wal_dev: Arc<dyn Device> = MemDevice::new(1);
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new_with_wal(wal_harness_cfg(), CountStore, log_dev.clone(), wal_dev.clone());
    let mgr = CheckpointManager::new(ckpt_dev.clone(), CheckpointConfig { retain: 1, auto_prune: true });

    // Enough appends to fill several 4 KiB segments, then two checkpoints:
    // with retain = 1 the second commit's truncation may reclaim every
    // segment below its own cutoff.
    for round in 0..2u64 {
        {
            let session = store.start_session();
            for k in 0..KEYSPACE {
                let _ = session.upsert(&k, &(k + 100 * round + 1));
            }
            session.wait_wal_durable().unwrap();
        }
        mgr.checkpoint_store(&store).expect("fault-free commit");
    }
    let cutoff = mgr.generations().pop().unwrap().wal_lsn;
    assert_eq!(cutoff, 2 * KEYSPACE);
    drop(store);
    drop(mgr);
    log_dev.flush_barrier().unwrap();
    ckpt_dev.flush_barrier().unwrap();
    wal_dev.flush_barrier().unwrap();

    let rec = ckpt_manager::recover_store_with_wal::<u64, u64, CountStore>(
        wal_harness_cfg(),
        CountStore,
        log_dev,
        ckpt_dev,
        wal_dev,
        CheckpointConfig { retain: 1, auto_prune: true },
    )
    .expect("recovery over a truncated WAL");
    assert_eq!(rec.wal_replayed, 0, "everything is below the cutoff");
    let session = rec.store.start_session();
    for k in 0..KEYSPACE {
        assert_eq!(session_read(&session, k), Some(k + 101), "key {k}");
    }
    // And the resumed WAL keeps acking.
    let _ = session.upsert(&1, &999);
    session.wait_wal_durable().unwrap();
}

/// Satellite regression: a failed flush barrier can never ack a group
/// commit — the session's durability wait errors, the failure is sticky,
/// and the metrics record a commit failure and zero commits.
#[test]
fn failed_barrier_never_acks_a_group() {
    let wal_fault = FaultDevice::wrap(MemDevice::new(1));
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new_with_wal(
        wal_harness_cfg(),
        CountStore,
        MemDevice::new(2),
        wal_fault.clone(),
    );
    // The WAL device is alone in its fault domain: barrier #0 is the first
    // group's fsync. Fail it (transiently — the device itself stays up).
    wal_fault.fail_flush_at(0);

    let session = store.start_session();
    let _ = session.upsert(&1, &11);
    let err = session.wait_wal_durable();
    assert!(err.is_err(), "group acked across a failed barrier: {err:?}");
    assert!(matches!(session.poll_wal_durable(), Some(Err(_))));

    // Sticky: later mutations apply in memory but never become durable.
    let _ = session.upsert(&2, &22);
    assert!(session.wait_wal_durable().is_err());
    assert!(session.complete_pending(true).is_empty()); // returns, no hang

    let m = store.metrics();
    assert_eq!(m.wal.commits, 0, "a group committed across a failed barrier");
    assert!(m.wal.commit_failures >= 1);
    assert!(store.wal().unwrap().failure().is_some());
}

use faster_storage::Device;

/// Route-observing wrapper: counts, per write SQE, whether its completion
/// is ring-routed or legacy callback-routed, then forwards to the inner
/// device untouched.
struct RouteProbe {
    inner: Arc<dyn Device>,
    ring_writes: AtomicU64,
    cb_writes: AtomicU64,
}

impl Device for RouteProbe {
    fn sector_size(&self) -> usize {
        self.inner.sector_size()
    }

    fn submit(&self, sqe: Sqe) {
        let (op, completion) = sqe.into_parts();
        if matches!(op, SqeOp::Write { .. }) {
            let counter =
                if completion.is_ring() { &self.ring_writes } else { &self.cb_writes };
            counter.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.submit(Sqe::from_parts(op, completion));
    }

    fn flush_barrier(&self) -> Result<(), IoError> {
        self.inner.flush_barrier()
    }

    fn stats(&self) -> DeviceStats {
        self.inner.stats()
    }
}

/// Satellite regression (DESIGN.md §9/§10): WAL group commits ride the
/// submission/completion ring — the commit thread parks on its private ring
/// rather than handing per-write callbacks to the device. Every write the
/// WAL device sees must be ring-routed; none may fall back to the legacy
/// callback route.
#[test]
fn wal_group_writes_are_ring_routed() {
    let probe = Arc::new(RouteProbe {
        inner: MemDevice::new(1),
        ring_writes: AtomicU64::new(0),
        cb_writes: AtomicU64::new(0),
    });
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new_with_wal(
        wal_harness_cfg(),
        CountStore,
        MemDevice::new(2),
        probe.clone(),
    );
    {
        let session = store.start_session();
        for k in 0..KEYSPACE {
            let _ = session.upsert(&k, &(k + 1));
            // Zero batch window: each acked wait closes (at least) one
            // group, so the run commits many independent group writes.
            session.wait_wal_durable().unwrap();
        }
    }
    drop(store);

    let ring = probe.ring_writes.load(Ordering::Relaxed);
    let cb = probe.cb_writes.load(Ordering::Relaxed);
    assert!(
        ring >= KEYSPACE / 2,
        "expected many ring-routed group writes, saw {ring}"
    );
    assert_eq!(
        cb, 0,
        "{cb} WAL writes took the legacy callback route instead of the ring"
    );
}
