//! CRDT (mergeable RMW) integration: delta records across regions and their
//! reconciliation on reads (§6.3).

use faster_core::{CountStore, FasterKv, FasterKvConfig};
use faster_hlog::HLogConfig;
use faster_index::IndexConfig;
use faster_integration_tests::{read_blocking, rmw_blocking};
use faster_storage::MemDevice;
use std::sync::{Arc, Barrier};

fn cfg() -> FasterKvConfig {
    FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 4, mutable_pages: 1, io_threads: 2 })
        .with_max_sessions(16)
        .with_refresh_interval(16)
}

#[test]
fn deltas_on_cold_keys_reconcile() {
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, MemDevice::new(2));
    let session = store.start_session();
    rmw_blocking(&session, 1, 100); // base
    // Evict key 1 far below head.
    for k in 1000..5000u64 {
        session.upsert(&k, &k).expect("writable");
    }
    store.log().flush_barrier().unwrap();
    // Three cold increments: the first appends a delta without I/O; the
    // delta lands at the tail (mutable), so the rest update it in place.
    let reads_before = store.log().device().stats().reads;
    let m0 = store.metrics().sessions.totals;
    for _ in 0..3 {
        assert!(session.rmw(&1, &10).is_ok());
    }
    assert_eq!(store.log().device().stats().reads, reads_before);
    let m1 = store.metrics().sessions.totals;
    assert!(m1.deltas - m0.deltas >= 1, "totals: {m1:?}");
    assert!(m1.in_place - m0.in_place >= 2, "totals: {m1:?}");
    // The read walks delta(s) then the disk base and merges.
    assert_eq!(read_blocking(&session, 1), Some(130));
}

#[test]
fn concurrent_crdt_increments_exact_across_eviction() {
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, MemDevice::new(2));
    let threads = 4u64;
    let per = 3_000u64;
    let keys = 8u64;
    let barrier = Arc::new(Barrier::new(threads as usize));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let store = store.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let session = store.start_session();
                let mut rng = faster_util::XorShift64::new(t + 21);
                barrier.wait();
                for i in 0..per {
                    let k = rng.next_below(keys);
                    rmw_blocking(&session, k, 1);
                    if i % 100 == 0 {
                        // Churn cold keys so the counted keys cycle through
                        // every region (mutable, fuzzy, read-only, disk).
                        session.upsert(&(10_000 + t * per + i), &0).expect("writable");
                    }
                }
                session.complete_pending(true);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let session = store.start_session();
    let total: u64 = (0..keys).map(|k| read_blocking(&session, k).unwrap_or(0)).sum();
    assert_eq!(total, threads * per, "CRDT increments must merge exactly");
}

#[test]
fn delete_then_crdt_restarts_from_identity() {
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, MemDevice::new(1));
    let session = store.start_session();
    rmw_blocking(&session, 3, 50);
    session.delete(&3).unwrap();
    rmw_blocking(&session, 3, 5);
    assert_eq!(read_blocking(&session, 3), Some(5), "post-delete counter restarts");
}
