//! Over-the-wire protocol tests for the RESP front-end (DESIGN.md §13).
//!
//! Everything here talks to a real `faster-server` instance through a TCP
//! socket — no store shortcuts — so the full stack is under test: frame
//! parsing, pipelined batch execution, in-order reply emission across
//! pending disk reads, WAL-durability-gated mutation acks, `-READONLY`
//! degradation, and acked-write recovery after killing the server mid
//! pipeline (reusing the WAL crash harness's store configuration).

use faster_core::ckpt_manager::{self, CheckpointConfig};
use faster_core::{CountStore, FasterKv, FasterKvConfig};
use faster_hlog::HLogConfig;
use faster_index::IndexConfig;
use faster_integration_tests::fault_harness::wal_harness_cfg;
use faster_server::{Server, ServerConfig, Store};
use faster_storage::{Device, FaultDevice, MemDevice};
use faster_util::XorShift64;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

// ------------------------------------------------------------- test client

/// One decoded RESP reply, as a blocking test client sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Reply {
    Simple(String),
    Error(String),
    Int(u64),
    Bulk(String),
    Nil,
}

struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to server");
        stream.set_nodelay(true).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        Client { stream, buf: Vec::new(), pos: 0 }
    }

    fn send(&mut self, data: &[u8]) {
        self.stream.write_all(data).expect("send");
    }

    /// Reads one reply frame; `None` once the server closes the connection.
    fn read_reply(&mut self) -> Option<Reply> {
        loop {
            if let Some((reply, used)) = self.try_decode() {
                self.pos += used;
                if self.pos == self.buf.len() {
                    self.buf.clear();
                    self.pos = 0;
                }
                return Some(reply);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("client read failed: {e}"),
            }
        }
    }

    fn try_decode(&self) -> Option<(Reply, usize)> {
        let data = &self.buf[self.pos..];
        let nl = data.iter().position(|&b| b == b'\n')?;
        let line = std::str::from_utf8(&data[..nl - 1]).expect("ASCII reply line");
        let rest = &line[1..];
        match data[0] {
            b'+' => Some((Reply::Simple(rest.into()), nl + 1)),
            b'-' => Some((Reply::Error(rest.into()), nl + 1)),
            b':' => Some((Reply::Int(rest.parse().expect("integer reply")), nl + 1)),
            b'$' => {
                let len: i64 = rest.parse().expect("bulk length");
                if len < 0 {
                    return Some((Reply::Nil, nl + 1));
                }
                let start = nl + 1;
                let end = start + len as usize;
                if data.len() < end + 2 {
                    return None;
                }
                let s = std::str::from_utf8(&data[start..end]).expect("bulk payload");
                Some((Reply::Bulk(s.into()), end + 2))
            }
            other => panic!("unexpected reply prefix {:?}", other as char),
        }
    }
}

/// A store small enough that the workload spills to "disk" (MemDevice), so
/// pipelined GETs exercise the pending-read reply path, not just memory.
fn spilling_store() -> Store {
    let cfg = FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 8, mutable_pages: 2, io_threads: 2 })
        .with_max_sessions(16)
        .with_refresh_interval(64);
    FasterKv::new(cfg, CountStore, MemDevice::new(2))
}

// ------------------------------------------------------------------- tests

#[test]
fn ping_and_quit() {
    let server = Server::start(spilling_store(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.local_addr());
    c.send(b"PING\r\n");
    assert_eq!(c.read_reply(), Some(Reply::Simple("PONG".into())));
    c.send(b"*1\r\n$4\r\nPING\r\n");
    assert_eq!(c.read_reply(), Some(Reply::Simple("PONG".into())));
    c.send(b"QUIT\r\n");
    assert_eq!(c.read_reply(), Some(Reply::Simple("OK".into())));
    assert_eq!(c.read_reply(), None, "server must close after QUIT");
}

/// The tentpole behavior: a seeded pipelined mixed workload over one
/// connection, checked command-by-command against an oracle. Single
/// connection ⇒ strictly serial store semantics, so every reply is exactly
/// predictable, including INCR read-backs — even when cold GETs go pending
/// and must not reorder the reply stream.
#[test]
fn pipelined_mixed_workload_matches_oracle() {
    let store = spilling_store();
    // Preload a wide cold range so lookups leave the mutable region.
    {
        let session = store.start_session();
        for k in 0..6_000u64 {
            session.upsert(&(10_000 + k), &k).unwrap();
        }
        session.complete_pending(true);
        store.log().flush_barrier().unwrap();
    }
    let server = Server::start(store, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.local_addr());
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    // The preloaded cold keys are part of the oracle too.
    for k in 0..6_000u64 {
        oracle.insert(10_000 + k, k);
    }

    let mut rng = XorShift64::new(0x5EED);
    let mut sent = 0u64;
    while sent < 4_000 {
        let depth = 1 + rng.next_below(64);
        let mut frame = Vec::new();
        let mut expected: Vec<Reply> = Vec::new();
        for _ in 0..depth {
            // Mostly the hot keyspace; one slot in eight probes cold keys.
            let key = if rng.next_below(8) == 0 {
                10_000 + rng.next_below(6_000)
            } else {
                rng.next_below(512)
            };
            match rng.next_below(10) {
                0..=3 => {
                    let v = rng.next_below(1 << 20);
                    frame.extend_from_slice(format!("SET {key} {v}\r\n").as_bytes());
                    oracle.insert(key, v);
                    expected.push(Reply::Simple("OK".into()));
                }
                4..=6 => {
                    frame.extend_from_slice(format!("GET {key}\r\n").as_bytes());
                    expected.push(match oracle.get(&key) {
                        Some(v) => Reply::Bulk(v.to_string()),
                        None => Reply::Nil,
                    });
                }
                7..=8 => {
                    let n = 1 + rng.next_below(100);
                    frame.extend_from_slice(format!("INCRBY {key} {n}\r\n").as_bytes());
                    let v = oracle.entry(key).or_insert(0);
                    *v += n;
                    expected.push(Reply::Int(*v));
                }
                _ => {
                    frame.extend_from_slice(format!("DEL {key}\r\n").as_bytes());
                    oracle.remove(&key);
                    expected.push(Reply::Int(1));
                }
            }
        }
        sent += depth;
        c.send(&frame);
        for (i, want) in expected.iter().enumerate() {
            let got = c.read_reply().expect("reply stream ended early");
            assert_eq!(&got, want, "pipelined op {i} of window ending at {sent}");
        }
    }
}

/// Several concurrent connections over disjoint key ranges: replies stay
/// per-connection exact while workers multiplex them.
#[test]
fn concurrent_connections_stay_isolated() {
    let server = Server::start(
        spilling_store(),
        "127.0.0.1:0",
        ServerConfig { workers: 3 },
    )
    .unwrap();
    let addr = server.local_addr();
    let handles: Vec<_> = (0..6u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let base = t * 1_000;
                let mut rng = XorShift64::new(0xFACE + t);
                let mut oracle: HashMap<u64, u64> = HashMap::new();
                for round in 0..40 {
                    let depth = 1 + rng.next_below(32);
                    let mut frame = Vec::new();
                    let mut expected = Vec::new();
                    for _ in 0..depth {
                        let key = base + rng.next_below(200);
                        if rng.next_below(2) == 0 {
                            let v = rng.next_below(1 << 16);
                            frame.extend_from_slice(format!("SET {key} {v}\r\n").as_bytes());
                            oracle.insert(key, v);
                            expected.push(Reply::Simple("OK".into()));
                        } else {
                            frame.extend_from_slice(format!("GET {key}\r\n").as_bytes());
                            expected.push(match oracle.get(&key) {
                                Some(v) => Reply::Bulk(v.to_string()),
                                None => Reply::Nil,
                            });
                        }
                    }
                    c.send(&frame);
                    for want in &expected {
                        let got = c.read_reply().expect("reply stream ended early");
                        assert_eq!(&got, want, "thread {t} round {round}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
}

#[test]
fn malformed_frames_error_and_close() {
    let server = Server::start(spilling_store(), "127.0.0.1:0", ServerConfig::default()).unwrap();

    // Stream-level garbage: one -ERR, then the connection closes.
    let mut c = Client::connect(server.local_addr());
    c.send(b"*not-a-number\r\n");
    match c.read_reply() {
        Some(Reply::Error(e)) => assert!(e.contains("Protocol error"), "got {e:?}"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert_eq!(c.read_reply(), None, "desynchronized stream must close");

    // Same for a desynchronized bulk header inside an array frame.
    let mut c = Client::connect(server.local_addr());
    c.send(b"*2\r\nX3\r\nGET\r\n");
    assert!(matches!(c.read_reply(), Some(Reply::Error(_))));
    assert_eq!(c.read_reply(), None);

    // Content-level errors keep the stream: bad integer, unknown command,
    // wrong arity — each answers -ERR and the next command still works.
    let mut c = Client::connect(server.local_addr());
    c.send(b"GET notanumber\r\nFLURB 1\r\nSET 1\r\nPING\r\n");
    for _ in 0..3 {
        assert!(matches!(c.read_reply(), Some(Reply::Error(_))));
    }
    assert_eq!(c.read_reply(), Some(Reply::Simple("PONG".into())));
}

/// A legal empty array (`*0\r\n`) and stray newlines are ignored silently —
/// no reply, no reply-pairing shift, and (the regression that matters) no
/// worker-thread panic: `*0` used to index `args[0]` in decode() and kill
/// the worker, hanging every connection routed to it.
#[test]
fn empty_frames_are_ignored_and_do_not_kill_the_worker() {
    let server = Server::start(spilling_store(), "127.0.0.1:0", ServerConfig { workers: 1 }).unwrap();

    let mut c = Client::connect(server.local_addr());
    // Empty frames interleaved with real commands, pipelined in one burst:
    // the only replies are the real commands', in order.
    c.send(b"*0\r\n\r\n\nSET 9 90\r\n*0\r\nGET 9\r\n   \r\nPING\r\n");
    assert_eq!(c.read_reply(), Some(Reply::Simple("OK".into())));
    assert_eq!(c.read_reply(), Some(Reply::Bulk("90".into())));
    assert_eq!(c.read_reply(), Some(Reply::Simple("PONG".into())));

    // With workers=1, a panicked worker would strand this new connection;
    // it serving proves the empty array did not take the event loop down.
    let mut c2 = Client::connect(server.local_addr());
    c2.send(b"*0\r\n*1\r\n$4\r\nPING\r\n");
    assert_eq!(c2.read_reply(), Some(Reply::Simple("PONG".into())));
}

/// A dead WAL degrades the store to read-only (DESIGN.md §12): the SET
/// whose group commit failed answers `-READONLY` (its ack gate broke), the
/// degradation is sticky for later mutations, and reads keep serving.
#[test]
fn read_only_degradation_maps_to_readonly_errors() {
    let wal_fault = FaultDevice::wrap(MemDevice::new(1));
    let store: Store = FasterKv::new_with_wal(
        wal_harness_cfg(),
        CountStore,
        MemDevice::new(2),
        wal_fault.clone(),
    );
    let server = Server::start(store, "127.0.0.1:0", ServerConfig { workers: 1 }).unwrap();
    let mut c = Client::connect(server.local_addr());

    // Healthy first: a durable SET acks and reads back.
    c.send(b"SET 1 11\r\nGET 1\r\n");
    assert_eq!(c.read_reply(), Some(Reply::Simple("OK".into())));
    assert_eq!(c.read_reply(), Some(Reply::Bulk("11".into())));

    // The next WAL barrier fails: its group commit cannot ack, and a WAL
    // failure is sticky — the log refuses every commit from then on.
    wal_fault.fail_flush_at(0);
    c.send(b"SET 2 22\r\n");
    match c.read_reply() {
        Some(Reply::Error(e)) => {
            assert!(e.starts_with("READONLY"), "expected -READONLY, got {e:?}")
        }
        other => panic!("expected -READONLY, got {other:?}"),
    }

    // Sticky: later mutations are refused up front, reads still serve.
    c.send(b"SET 3 33\r\nDEL 1\r\nINCR 4\r\nGET 1\r\n");
    for _ in 0..3 {
        match c.read_reply() {
            Some(Reply::Error(e)) => {
                assert!(e.starts_with("READONLY"), "expected -READONLY, got {e:?}")
            }
            other => panic!("expected -READONLY, got {other:?}"),
        }
    }
    assert_eq!(c.read_reply(), Some(Reply::Bulk("11".into())), "reads must keep serving");
}

/// Kill-the-server-mid-pipeline durability: acked SETs survive. The client
/// pipelines hundreds of SETs, collects only a prefix of the acks, and the
/// server is torn down with replies still in flight; recovery from the WAL
/// (same recovery path the crash harness sweeps) must contain every key
/// whose `+OK` was actually received.
#[test]
fn killed_mid_pipeline_recovers_every_acked_set() {
    let log_dev: Arc<dyn Device> = MemDevice::new(2);
    let ckpt_dev: Arc<dyn Device> = MemDevice::new(1);
    let wal_dev: Arc<dyn Device> = MemDevice::new(1);
    let store: Store =
        FasterKv::new_with_wal(wal_harness_cfg(), CountStore, log_dev.clone(), wal_dev.clone());
    let server = Server::start(store, "127.0.0.1:0", ServerConfig { workers: 1 }).unwrap();

    let mut c = Client::connect(server.local_addr());
    const SETS: u64 = 400;
    const TAKE_ACKS: u64 = 120;
    let mut frame = Vec::new();
    for k in 0..SETS {
        frame.extend_from_slice(format!("SET {k} {}\r\n", k + 1).as_bytes());
    }
    c.send(&frame);
    // Collect a prefix of the acks, then kill the server mid-pipeline.
    for k in 0..TAKE_ACKS {
        assert_eq!(c.read_reply(), Some(Reply::Simple("OK".into())), "ack {k}");
    }
    server.shutdown();
    drop(server);
    drop(c);

    let rec = ckpt_manager::recover_store_with_wal::<u64, u64, CountStore>(
        wal_harness_cfg(),
        CountStore,
        log_dev,
        ckpt_dev,
        wal_dev,
        CheckpointConfig::default(),
    )
    .expect("recovery after server kill");
    let session = rec.store.start_session();
    for k in 0..TAKE_ACKS {
        assert_eq!(
            faster_integration_tests::read_blocking(&session, k),
            Some(k + 1),
            "acked SET {k} lost after killing the server"
        );
    }
}
