//! Storage-failure resilience sweep (DESIGN.md §12).
//!
//! Exercises the flush retry/quarantine machinery, the checksummed-page
//! read path, and the graceful-degradation ladder end to end:
//!
//! 1. a transient write fault at *every* write position of a seeded
//!    workload is absorbed by flush retries — the store stays `Healthy`,
//!    nothing wedges, and a checkpoint/recovery round trip is oracle-exact;
//! 2. a permanently failing device quarantines pages and flips the store
//!    to `ReadOnly(FlushQuarantine)`: reads keep serving, the fallible
//!    mutation API returns typed errors, maintenance actuators refuse;
//! 3. corrupted device sectors are *never* served as data — every read is
//!    either the oracle's value or `IoError::Corrupt`;
//! 4. a full device flips to `ReadOnly(DeviceFull)`;
//! 5. a dead WAL flips to `ReadOnly(WalFailed)`;
//! 6. seeded multi-threaded traffic racing the degradation flip neither
//!    panics nor wedges.
//!
//! Seeded via `FASTER_FAULT_SEED_BASE` / `FASTER_FAULT_SEEDS` like the
//! other fault sweeps.

use faster_core::ckpt_manager::{self, CheckpointConfig, CheckpointManager};
use faster_core::{CountStore, FasterKv, HealthReason, OpError, StoreHealth};
use faster_integration_tests::fault_harness::{fault_seed_range, harness_cfg, KEYSPACE};
use faster_integration_tests::{read_blocking, read_result};
use faster_maintenance::Actuators;
use faster_storage::{Device, FaultDevice, IoError, MemDevice};
use faster_util::XorShift64;
use std::collections::HashMap;
use std::sync::Arc;

const PAGE_SIZE: u64 = 1 << 10; // harness_cfg() page_bits = 10

/// Blocking raw device write — the corruption scenario scribbles over
/// flushed pages behind the store's back.
fn write_sync(device: &Arc<dyn Device>, offset: u64, data: Vec<u8>) {
    let (tx, rx) = std::sync::mpsc::channel();
    device.write_async(offset, data, Box::new(move |r| tx.send(r).unwrap()));
    rx.recv().unwrap().expect("raw scribble write failed");
}

/// Runs `ops` seeded operations against `store`, mirroring them into
/// `oracle`. Upserts only — value equality stays trivially checkable even
/// when a scenario later loses a suffix of the log.
fn run_workload(
    store: &FasterKv<u64, u64, CountStore>,
    oracle: &mut HashMap<u64, u64>,
    rng: &mut XorShift64,
    ops: u64,
) {
    let session = store.start_session();
    for _ in 0..ops {
        let key = rng.next_u64() % KEYSPACE;
        let value = rng.next_u64() | 1;
        // Mirror only applied writes: once a scenario degrades the store
        // mid-workload, refused upserts must not advance the oracle.
        if session.upsert(&key, &value).is_ok() {
            oracle.insert(key, value);
        }
    }
    session.complete_pending(true);
}

/// Scenario 1: a single transient write fault at every write position.
///
/// For each seed, a fault-free dry run counts the device writes the
/// workload issues; the sweep then re-runs it once per write position with
/// exactly that write failing transiently. The flush-retry path must
/// absorb every single one: health stays `Healthy`, no page is
/// quarantined, every key reads back the oracle's value, and a durable
/// checkpoint recovers oracle-exact.
#[test]
fn transient_write_fault_at_every_position_is_absorbed() {
    for seed in fault_seed_range(2) {
        // Dry run: count write positions.
        let writes = {
            let fault = FaultDevice::wrap(MemDevice::new(2));
            let store: FasterKv<u64, u64, CountStore> =
                FasterKv::new(harness_cfg(), CountStore, fault.clone());
            let mut oracle = HashMap::new();
            run_workload(&store, &mut oracle, &mut XorShift64::new(seed), 600);
            store.log().shift_read_only_to_tail();
            store.log().wait_flush_quiesced();
            fault.writes_issued()
        };
        assert!(writes > 0, "[seed={seed}] dry run issued no writes");

        for k in 0..writes {
            let ctx = format!("seed={seed} fail_write_at={k}");
            let fault = FaultDevice::wrap(MemDevice::new(2));
            let ckpt_dev: Arc<dyn Device> = MemDevice::new(1);
            let store: FasterKv<u64, u64, CountStore> =
                FasterKv::new(harness_cfg(), CountStore, fault.clone());
            fault.fail_write_at(k);
            let mgr = CheckpointManager::new(ckpt_dev.clone(), CheckpointConfig::default());
            let mut oracle = HashMap::new();
            run_workload(&store, &mut oracle, &mut XorShift64::new(seed), 600);

            // The fault must be invisible above the log layer.
            assert_eq!(
                store.health(),
                StoreHealth::Healthy,
                "[{ctx}] one transient write fault degraded the store"
            );
            let m = store.metrics();
            assert_eq!(
                m.hlog.pages_quarantined, 0,
                "[{ctx}] transient fault quarantined a page"
            );
            if m.hlog.flushes_failed > 0 {
                assert!(
                    m.hlog.flush_retries > 0,
                    "[{ctx}] a flush failed but no retry was recorded"
                );
            }
            {
                let session = store.start_session();
                for (&key, &want) in &oracle {
                    assert_eq!(
                        read_blocking(&session, key),
                        Some(want),
                        "[{ctx}] key {key} lost under a transient write fault"
                    );
                }
            }

            // Durability end to end: the retried flushes must actually have
            // landed, so a checkpoint commits and recovers oracle-exact.
            let gen = mgr
                .checkpoint_store(&store)
                .unwrap_or_else(|e| panic!("[{ctx}] checkpoint must commit: {e}"));
            drop(store);
            let (recovered, _mgr2, rec) = ckpt_manager::recover_store::<u64, u64, CountStore>(
                harness_cfg(),
                CountStore,
                fault.inner(),
                ckpt_dev,
                CheckpointConfig::default(),
            )
            .unwrap_or_else(|e| panic!("[{ctx}] recovery failed: {e}"));
            assert_eq!(rec.gen, gen, "[{ctx}] recovery skipped the committed generation");
            let session = recovered.start_session();
            for (&key, &want) in &oracle {
                assert_eq!(
                    read_blocking(&session, key),
                    Some(want),
                    "[{ctx}] key {key} wrong after recovery"
                );
            }
        }
    }
}

/// Scenario 2: a permanently failing device. Every flush exhausts its
/// retry budget; the pages quarantine, the frontier still advances (no
/// allocation wedge — the workload below runs to completion), and the
/// store flips to `ReadOnly(FlushQuarantine)`. Reads of intact state keep
/// serving, reads into quarantined pages return `Corrupt`, the fallible
/// mutation API returns `OpError::ReadOnly`, and maintenance actuators
/// refuse to run.
#[test]
fn permanent_flush_failure_degrades_to_read_only() {
    for seed in fault_seed_range(4) {
        let ctx = format!("seed={seed}");
        let fault = FaultDevice::wrap(MemDevice::new(2));
        let store: FasterKv<u64, u64, CountStore> =
            FasterKv::new(harness_cfg(), CountStore, fault.clone());
        let mut oracle = HashMap::new();
        let mut rng = XorShift64::new(seed);
        // Healthy prefix, flushed cleanly so its pages stay readable cold.
        run_workload(&store, &mut oracle, &mut rng, 200);
        store.log().shift_read_only_to_tail();
        store.log().wait_flush_quiesced();
        // The device dies for good. The doomed phase writes *unique* keys:
        // once evicted, their only copies sit on quarantined pages, so the
        // read sweep below is guaranteed to hit the quarantine path. This
        // loop terminating is itself the no-wedge assertion — quarantine
        // advances the flush frontier, so allocation never stalls on a
        // dead device.
        fault.fail_next_writes(u32::MAX);
        {
            let session = store.start_session();
            for i in 0..2000u64 {
                let key = 10_000 + i;
                let value = rng.next_u64() | 1;
                if session.upsert(&key, &value).is_ok() {
                    oracle.insert(key, value);
                }
            }
            session.complete_pending(true);
        }
        // Shrink the buffer and nudge the allocator so the doomed pages
        // actually evict (reads of them must now go to the device).
        store.log().set_active_pages(2);
        run_workload(&store, &mut oracle, &mut rng, 64);
        store.log().shift_read_only_to_tail();
        store.log().wait_flush_quiesced();

        let health = store.health();
        assert!(
            matches!(health, StoreHealth::ReadOnly(HealthReason::FlushQuarantine { .. })),
            "[{ctx}] expected ReadOnly(FlushQuarantine), got {health:?}"
        );
        let m = store.metrics();
        assert!(m.hlog.pages_quarantined > 0, "[{ctx}] no page was quarantined");
        assert!(
            m.hlog.flush_retries >= m.hlog.pages_quarantined,
            "[{ctx}] quarantine must be preceded by retries"
        );
        assert_eq!(m.health.state, 2, "[{ctx}] health metric disagrees");
        assert_eq!(m.health.reason, "flush_quarantine", "[{ctx}] health reason disagrees");

        let debug = store.log().flush_debug();
        assert!(
            debug.pending_above_frontier.is_empty() && debug.inflight == 0,
            "[{ctx}] quarantine left the flush frontier gapped: {debug:?}"
        );

        let session = store.start_session();
        // The fallible mutation API reports the degradation...
        assert!(
            matches!(session.upsert(&1, &1), Err(OpError::ReadOnly(_))),
            "[{ctx}] upsert must refuse on a read-only store"
        );
        assert!(
            matches!(session.rmw(&1, &1), Err(OpError::ReadOnly(_))),
            "[{ctx}] rmw must refuse on a read-only store"
        );
        assert!(
            matches!(session.delete(&1), Err(OpError::ReadOnly(_))),
            "[{ctx}] delete must refuse on a read-only store"
        );
        // ...while reads still serve: resident state exactly, quarantined
        // pages as a typed Corrupt (never fabricated data, never a wedge).
        let mut served = 0u64;
        let mut corrupt = 0u64;
        for (&key, &want) in &oracle {
            match read_result(&session, key) {
                Ok(Some(got)) => {
                    assert_eq!(got, want, "[{ctx}] read-only store served a wrong value");
                    served += 1;
                }
                Ok(None) => panic!("[{ctx}] key {key} vanished instead of erroring"),
                Err(IoError::Corrupt { .. }) => corrupt += 1,
                Err(e) => panic!("[{ctx}] unexpected read error: {e}"),
            }
        }
        assert!(served > 0, "[{ctx}] nothing readable on a read-only store");
        assert!(corrupt > 0, "[{ctx}] expected some reads to hit quarantined pages");

        // Maintenance refuses: no compaction (truncation would destroy the
        // only intact copies) and no checkpoint churn.
        let acts = store.maintenance_actuators(None);
        assert_eq!(
            acts.compact(store.log().safe_read_only_address().raw()),
            0,
            "[{ctx}] compaction must refuse on a read-only store"
        );
        assert!(!acts.checkpoint(), "[{ctx}] checkpoint must refuse on a read-only store");
    }
}

/// Scenario 3: corrupted device sectors. After forcing the buffer down so
/// cold reads happen, every flushed page's data region is overwritten with
/// garbage (footers left intact). Every subsequent read must come back as
/// either the oracle's exact value (resident page) or `IoError::Corrupt`
/// (checksum caught it) — never wrong data. The store degrades but stays
/// writable.
#[test]
fn corrupted_sectors_never_serve_wrong_data() {
    for seed in fault_seed_range(4) {
        let ctx = format!("seed={seed}");
        let device: Arc<dyn Device> = MemDevice::new(2);
        let store: FasterKv<u64, u64, CountStore> =
            FasterKv::new(harness_cfg(), CountStore, device.clone());
        let mut oracle = HashMap::new();
        run_workload(&store, &mut oracle, &mut XorShift64::new(seed), 3000);
        // Shrink the buffer and let the head advance: most pages evict.
        store.log().set_active_pages(2);
        run_workload(&store, &mut oracle, &mut XorShift64::new(seed ^ 0xDEAD), 64);
        store.log().shift_read_only_to_tail();
        store.log().wait_flush_quiesced();
        let head_page = store.log().head_address().raw() / PAGE_SIZE;
        assert!(head_page > 1, "[{ctx}] workload too small to evict any page");

        // Scribble over the data region of every evicted page (sparing the
        // footers: the checksums must now disagree with the data).
        let stride = faster_hlog::checksum::stride(PAGE_SIZE);
        for page in 0..head_page {
            write_sync(&device, page * stride, vec![0xA5u8; PAGE_SIZE as usize]);
        }

        let session = store.start_session();
        let mut corrupt = 0u64;
        for (&key, &want) in &oracle {
            match read_result(&session, key) {
                Ok(Some(got)) => {
                    assert_eq!(
                        got, want,
                        "[{ctx}] key {key}: corruption was served as data"
                    );
                }
                Ok(None) => panic!("[{ctx}] key {key} silently vanished"),
                Err(IoError::Corrupt { .. }) => corrupt += 1,
                Err(e) => panic!("[{ctx}] unexpected read error: {e}"),
            }
        }
        assert!(corrupt > 0, "[{ctx}] no cold read hit the corrupted pages");
        let m = store.metrics();
        assert!(m.hlog.corrupt_reads > 0, "[{ctx}] corrupt reads not counted");
        assert!(
            matches!(store.health(), StoreHealth::Degraded(HealthReason::CorruptRead { .. })),
            "[{ctx}] corrupt reads must degrade (only) to Degraded, got {:?}",
            store.health()
        );
        // Degraded is not read-only: new writes are still safe.
        assert!(
            session.upsert(&(KEYSPACE + 1), &7).is_ok(),
            "[{ctx}] a degraded store must still accept writes"
        );
    }
}

/// Scenario 4: the device reports out of space. The failed flush is
/// permanent (no retry can help), so the page quarantines immediately and
/// the store flips to `ReadOnly(DeviceFull)`.
#[test]
fn device_full_flips_read_only() {
    let fault = FaultDevice::wrap(MemDevice::new(2));
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(harness_cfg(), CountStore, fault.clone());
    let mut oracle = HashMap::new();
    let mut rng = XorShift64::new(7);
    run_workload(&store, &mut oracle, &mut rng, 200);
    store.log().shift_read_only_to_tail();
    store.log().wait_flush_quiesced();
    // Everything flushed so far fits; the next flush trips the limit.
    fault.set_full_after_bytes(Some(0));
    run_workload(&store, &mut oracle, &mut rng, 2000);
    store.log().shift_read_only_to_tail();
    store.log().wait_flush_quiesced();

    assert_eq!(
        store.health(),
        StoreHealth::ReadOnly(HealthReason::DeviceFull),
        "full device must flip the store read-only"
    );
    let m = store.metrics();
    assert_eq!(m.health.reason, "device_full");
    // Full is permanent: no retry storm, immediate quarantine.
    assert!(m.hlog.pages_quarantined > 0);
    let session = store.start_session();
    assert!(matches!(session.upsert(&1, &1), Err(OpError::ReadOnly(_))));
    // Intact (still-resident) state keeps serving.
    let mut served = 0u64;
    for (&key, &want) in &oracle {
        if let Ok(Some(got)) = read_result(&session, key) {
            assert_eq!(got, want, "full-device store served a wrong value");
            served += 1;
        }
    }
    assert!(served > 0, "nothing readable after device-full flip");
}

/// Scenario 5: the WAL device dies. The next group commit fails, the
/// session surfaces the error from `wait_wal_durable`, and the store flips
/// to `ReadOnly(WalFailed)` — acked-in-memory appends can no longer be
/// made durable.
#[test]
fn wal_failure_flips_read_only() {
    use faster_integration_tests::fault_harness::wal_harness_cfg;
    let log_dev: Arc<dyn Device> = MemDevice::new(2);
    let wal_fault = FaultDevice::wrap(MemDevice::new(1));
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new_with_wal(wal_harness_cfg(), CountStore, log_dev, wal_fault.clone());
    {
        let session = store.start_session();
        session.upsert(&1, &11).expect("writable");
        session.wait_wal_durable().expect("healthy WAL must commit");
    }
    assert_eq!(store.health(), StoreHealth::Healthy);

    wal_fault.fail_next_writes(u32::MAX);
    let session = store.start_session();
    let _ = session.upsert(&2, &22);
    assert!(
        session.wait_wal_durable().is_err(),
        "dead WAL must fail the durability wait"
    );
    assert_eq!(
        store.health(),
        StoreHealth::ReadOnly(HealthReason::WalFailed),
        "WAL failure must flip the store read-only"
    );
    assert!(matches!(session.upsert(&3, &33), Err(OpError::ReadOnly(_))));
    // The log itself is fine: already-written state still reads back.
    assert_eq!(read_blocking(&session, 1), Some(11));
    assert_eq!(store.metrics().health.reason, "wal_failed");
}

/// Scenario 6: the degradation flip races live multi-threaded traffic.
/// Writer threads hammer the mutation API while the device dies
/// under them; the run must terminate (no allocation wedge), never panic,
/// and settle into a read-only store whose surviving state still serves.
#[test]
fn degradation_races_foreground_traffic() {
    for seed in fault_seed_range(4) {
        let ctx = format!("seed={seed}");
        let fault = FaultDevice::wrap(MemDevice::new(2));
        let store: FasterKv<u64, u64, CountStore> =
            FasterKv::new(harness_cfg(), CountStore, fault.clone());
        {
            let mut oracle = HashMap::new();
            run_workload(&store, &mut oracle, &mut XorShift64::new(seed), 100);
        }

        let threads: Vec<_> = (0..3u64)
            .map(|t| {
                let store = store.clone();
                let fault = fault.clone();
                std::thread::spawn(move || {
                    let session = store.start_session();
                    let mut rng = XorShift64::new((seed << 8) | t);
                    for i in 0..1500u64 {
                        // One thread kills the device mid-run.
                        if t == 0 && i == 300 {
                            fault.fail_next_writes(u32::MAX);
                        }
                        let key = rng.next_u64() % KEYSPACE;
                        match rng.next_u64() % 4 {
                            0 => {
                                // The mutation may refuse once the flip
                                // lands; it must never panic.
                                let _ = session.upsert(&key, &(i | 1));
                            }
                            1 => {
                                let _ = read_result(&session, key);
                            }
                            _ => {
                                let _ = session.upsert(&key, &(i | 1));
                            }
                        }
                    }
                    session.complete_pending(true);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap_or_else(|_| panic!("[{ctx}] traffic thread panicked"));
        }
        store.log().shift_read_only_to_tail();
        store.log().wait_flush_quiesced();

        assert!(
            matches!(store.health(), StoreHealth::ReadOnly(_)),
            "[{ctx}] dead device must leave the store read-only, got {:?}",
            store.health()
        );
        // Post-flip: the store is still a working read path.
        let session = store.start_session();
        let mut served = 0u64;
        for key in 0..KEYSPACE {
            if let Ok(Some(_)) = read_result(&session, key) {
                served += 1;
            }
        }
        assert!(served > 0, "[{ctx}] nothing readable after the racing flip");
    }
}
