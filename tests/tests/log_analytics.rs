//! Appendix F: the log as an analytics feed — scanning the record log as "a
//! sequence of updates to the state of the application".

use faster_core::record::RecordRef;
use faster_core::{CountStore, FasterKv, FasterKvConfig};
use faster_hlog::{HLogConfig, LogScanner};
use faster_index::IndexConfig;
use faster_integration_tests::rmw_blocking;
use faster_storage::MemDevice;
use std::collections::HashMap;

#[test]
fn scan_reconstructs_update_history() {
    let cfg = FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 6, tag_bits: 15, max_resize_chunks: 2 })
        // Append-only so *every* update lands in the log (analytics mode).
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 8, mutable_pages: 0, io_threads: 2 })
        .with_max_sessions(4)
        .with_refresh_interval(16);
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg, CountStore, MemDevice::new(2));
    let session = store.start_session();
    let rounds = 50u64;
    let keys = 10u64;
    for _ in 0..rounds {
        for k in 0..keys {
            rmw_blocking(&session, k, 1);
        }
    }
    store.log().flush_barrier().unwrap();

    // Stream the log: count versions per key and track the max value seen.
    let rec_size = RecordRef::<u64, u64>::size();
    let mut versions: HashMap<u64, u64> = HashMap::new();
    let mut max_value: HashMap<u64, u64> = HashMap::new();
    for page in LogScanner::full(store.log()) {
        let page = page.expect("scan");
        let mut off = page.start_offset;
        while off + rec_size <= page.end_offset {
            match RecordRef::<u64, u64>::parse_bytes(&page.bytes[off..off + rec_size]) {
                Some((h, k, v)) if !h.is_invalid() && !h.is_merge() => {
                    *versions.entry(k).or_default() += 1;
                    let e = max_value.entry(k).or_default();
                    *e = (*e).max(v);
                }
                Some(_) => {}
                None => break, // page padding
            }
            off += rec_size;
        }
    }
    for k in 0..keys {
        // Append-only: one version per update (history preserved), and the
        // newest version carries the final count.
        assert!(versions[&k] >= rounds, "key {k} history: {} versions", versions[&k]);
        assert_eq!(max_value[&k], rounds, "key {k} final value in log");
    }
}

#[test]
fn hybrid_log_is_approximately_time_ordered() {
    // §1.2: "HybridLog is record-oriented and approximately time-ordered".
    let cfg = FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 6, tag_bits: 15, max_resize_chunks: 2 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 8, mutable_pages: 4, io_threads: 2 })
        .with_max_sessions(4)
        .with_refresh_interval(16);
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg, CountStore, MemDevice::new(2));
    let session = store.start_session();
    // Two epochs of keys written in order.
    for k in 0..100u64 {
        session.upsert(&k, &1).unwrap();
    }
    for k in 100..200u64 {
        session.upsert(&k, &2).unwrap();
    }
    let rec_size = RecordRef::<u64, u64>::size();
    let mut first_epoch_pos = Vec::new();
    let mut second_epoch_pos = Vec::new();
    let mut pos = 0usize;
    for page in LogScanner::full(store.log()) {
        let page = page.expect("scan");
        let mut off = page.start_offset;
        while off + rec_size <= page.end_offset {
            if let Some((h, _k, v)) =
                RecordRef::<u64, u64>::parse_bytes(&page.bytes[off..off + rec_size])
            {
                if !h.is_invalid() {
                    if v == 1 {
                        first_epoch_pos.push(pos);
                    } else if v == 2 {
                        second_epoch_pos.push(pos);
                    }
                }
            } else {
                break;
            }
            off += rec_size;
            pos += 1;
        }
    }
    let max_first = *first_epoch_pos.iter().max().expect("epoch 1 records");
    let min_second = *second_epoch_pos.iter().min().expect("epoch 2 records");
    assert!(max_first < min_second, "later updates appear later in the log");
}
