//! Appendix D read-cache integration: disk reads populate a second,
//! never-flushed HybridLog; repeat reads hit it without I/O; updates splice
//! the cache copy out; eviction restores primary index addresses.

use faster_core::{CountStore, FasterKv, FasterKvConfig, Outcome};
use faster_hlog::HLogConfig;
use faster_index::IndexConfig;
use faster_integration_tests::{read_blocking, rmw_blocking};
use faster_storage::MemDevice;

fn cfg_with_cache(cache_pages: u64) -> FasterKvConfig {
    FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 4, mutable_pages: 1, io_threads: 2 })
        .with_max_sessions(8)
        .with_refresh_interval(16)
        .with_read_cache(HLogConfig {
            page_bits: 12,
            buffer_pages: cache_pages,
            mutable_pages: (cache_pages / 2).max(1),
            io_threads: 1,
        })
}

/// Builds a store where keys 0..100 are cold (on disk) and returns it.
fn store_with_cold_keys(cache_pages: u64) -> FasterKv<u64, u64, CountStore> {
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(cfg_with_cache(cache_pages), CountStore, MemDevice::new(2));
    let session = store.start_session();
    for k in 0..100u64 {
        session.upsert(&k, &(k + 500)).expect("writable");
    }
    for k in 10_000..14_000u64 {
        session.upsert(&k, &1).expect("writable"); // push 0..100 to disk
    }
    store.log().flush_barrier().unwrap();
    assert!(store.log().head_address().raw() > 0);
    store
}

#[test]
fn second_read_hits_cache_without_io() {
    let store = store_with_cold_keys(8);
    let session = store.start_session();
    // First read: from disk (pending), populates the cache.
    assert_eq!(read_blocking(&session, 5), Some(505));
    let reads_after_first = store.log().device().stats().reads;
    // Second read: cache hit — synchronous, no device read.
    match session.read(&5, &0) {
        Ok(Outcome::Value(v)) => assert_eq!(v, 505),
        other => panic!("expected cache hit, got {other:?}"),
    }
    assert_eq!(store.log().device().stats().reads, reads_after_first, "no extra device read");
}

#[test]
fn rmw_on_cached_key_needs_no_io() {
    let store = store_with_cold_keys(8);
    let session = store.start_session();
    assert_eq!(read_blocking(&session, 7), Some(507)); // cache it
    let reads_before = store.log().device().stats().reads;
    // CountStore is a CRDT so the delta path would dodge I/O anyway; what we
    // check is that the cache-hit RMW path computes the right value.
    assert!(session.rmw(&7, &3).is_ok(), "cache-hit RMW must complete synchronously");
    assert_eq!(store.log().device().stats().reads, reads_before);
    assert_eq!(read_blocking(&session, 7), Some(510));
}

#[test]
fn upsert_over_cached_key_wins() {
    let store = store_with_cold_keys(8);
    let session = store.start_session();
    assert_eq!(read_blocking(&session, 9), Some(509));
    session.upsert(&9, &42).expect("writable");
    assert_eq!(read_blocking(&session, 9), Some(42));
    // And the value survives another round trip to disk. (Churn on the same
    // session: every registered session must keep refreshing — §2.5 — or
    // epoch-gated log maintenance stalls.)
    for k in 20_000..24_000u64 {
        session.upsert(&k, &1).expect("writable");
    }
    store.log().flush_barrier().unwrap();
    assert_eq!(read_blocking(&session, 9), Some(42));
}

#[test]
fn delete_of_cached_key_sticks() {
    let store = store_with_cold_keys(8);
    let session = store.start_session();
    assert_eq!(read_blocking(&session, 11), Some(511));
    session.delete(&11).expect("writable");
    assert_eq!(read_blocking(&session, 11), None);
}

#[test]
fn eviction_restores_primary_addresses() {
    // Tiny cache: 2 pages of 4 KB = ~340 records; read 100 cold keys twice
    // over so early entries get evicted, then verify every key still reads
    // correctly (via disk again after the entry was restored).
    let store = store_with_cold_keys(2);
    let session = store.start_session();
    for round in 0..3 {
        for k in 0..100u64 {
            assert_eq!(read_blocking(&session, k), Some(k + 500), "round {round} key {k}");
        }
        session.refresh();
    }
}

#[test]
fn checkpoint_with_read_cache_resolves_tagged_entries() {
    let device = MemDevice::new(2);
    let data;
    {
        let store: FasterKv<u64, u64, CountStore> =
            FasterKv::new(cfg_with_cache(8), CountStore, device.clone());
        let session = store.start_session();
        for k in 0..100u64 {
            session.upsert(&k, &(k + 500)).expect("writable");
        }
        for k in 10_000..14_000u64 {
            session.upsert(&k, &1).expect("writable");
        }
        store.log().flush_barrier().unwrap();
        // Cache a handful of cold keys so their index entries are tagged.
        for k in 0..20u64 {
            assert_eq!(read_blocking(&session, k), Some(k + 500));
        }
        drop(session);
        data = store.checkpoint();
        // No tagged addresses may leak into the checkpoint.
        for &(_, raw) in &data.index.entries {
            let e = faster_index::HashBucketEntry(raw);
            assert!(
                !faster_core::read_cache::is_rc(e.address()),
                "tagged entry leaked into checkpoint"
            );
        }
    }
    let mut cfg = cfg_with_cache(8);
    cfg.read_cache = None;
    let store2: FasterKv<u64, u64, CountStore> =
        FasterKv::recover(cfg, CountStore, device, &data);
    let session = store2.start_session();
    for k in 0..100u64 {
        assert_eq!(read_blocking(&session, k), Some(k + 500), "key {k} after recovery");
    }
}

#[test]
fn crdt_deltas_bypass_cache_coherently() {
    let store = store_with_cold_keys(8);
    let session = store.start_session();
    assert_eq!(read_blocking(&session, 13), Some(513)); // cached
    // CRDT increment: cache-hit RMW (old value available) writes a primary
    // record; subsequent reads must see the updated value, not the stale
    // cached one.
    rmw_blocking(&session, 13, 100);
    assert_eq!(read_blocking(&session, 13), Some(613));
    rmw_blocking(&session, 13, 1);
    assert_eq!(read_blocking(&session, 13), Some(614));
}
