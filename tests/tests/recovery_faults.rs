//! Crash-consistency fault-injection tests: torn writes, crash-point
//! sweeps, transient-error schedules, and recovery invariant checking.
//!
//! The sweep is parameterized by `FASTER_FAULT_SEED_BASE` /
//! `FASTER_FAULT_SEEDS` so CI shards cover disjoint schedules; any failure
//! prints its `(seed, crash_after, torn, drop)` tuple for local replay.

use faster_core::checkpoint::CheckpointData;
use faster_core::{CountStore, FasterKv, OpError, Outcome};
use faster_integration_tests::fault_harness::{
    fault_seed_range, harness_cfg, run_crash_recovery_case, KEYSPACE,
};
use faster_integration_tests::read_blocking;
use faster_storage::{
    CompletionRing, Cqe, Device, FaultDevice, FileDevice, IoError, MemDevice, ReadFaultRate,
    Sqe, TornWrite,
};
use faster_util::Address;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The tentpole sweep: 10 seeds x 10 crash points by default (CI shards
/// raise the seed count), each run crashing the device mid-flush with a
/// varied torn-write model and occasionally a dropped (acknowledged but
/// unpersisted) flush before the crash. Every run must recover to exactly
/// the oracle snapshot at checkpoint time.
#[test]
fn crash_point_sweep_preserves_checkpoint_prefix() {
    let mut runs = 0u64;
    let mut fired = 0u64;
    for seed in fault_seed_range(10) {
        for i in 0..10u64 {
            // Crash points fan out across the post-checkpoint flush
            // traffic; the torn model cycles so every seed exercises
            // nothing-persisted, byte-torn, and sector-torn crashes.
            let crash_after = i * 2 + seed % 3;
            let torn = match (seed + i) % 3 {
                0 => TornWrite::Nothing,
                1 => TornWrite::Bytes(((seed.wrapping_mul(31) + i * 7) % 900) as usize),
                _ => TornWrite::SeededSectors { seed: seed ^ (i << 8) },
            };
            let drop_phase2_write = (seed + i) % 4 == 0;
            let report = run_crash_recovery_case(seed, crash_after, torn, drop_phase2_write);
            runs += 1;
            if report.crashed {
                fired += 1;
            }
            assert!(report.snapshot_keys > 0, "seed {seed}: empty oracle snapshot");
        }
    }
    // Crash points are swept over real flush traffic: if most never fire,
    // the sweep is vacuous (e.g. the workload stopped allocating).
    assert!(runs >= 100, "sweep ran only {runs} cases");
    assert!(
        fired * 2 >= runs,
        "only {fired}/{runs} crash points fired; sweep is not exercising flush traffic"
    );
}

/// Builds a store whose early keys have been evicted to the device, so
/// reads of them must take the pending I/O path.
fn evicted_store(
    device: std::sync::Arc<FaultDevice>,
) -> FasterKv<u64, u64, CountStore> {
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(harness_cfg(), CountStore, device);
    let session = store.start_session();
    for k in 0..KEYSPACE {
        session.upsert(&k, &(k * 10 + 1)).expect("writable");
    }
    // Push the early records out of the in-memory buffer.
    for k in 10_000..14_000u64 {
        session.upsert(&k, &k).expect("writable");
    }
    session.complete_pending(true);
    drop(session);
    store.log().flush_barrier().unwrap();
    store
}

/// Reads through transient faults by re-issuing on a failed completion.
/// Returns the final result; panics only if the op never completes at all.
fn read_through_faults(
    session: &faster_core::Session<u64, u64, CountStore>,
    key: u64,
) -> Option<u64> {
    for _ in 0..64 {
        match session.read(&key, &0) {
            Ok(Outcome::Value(v)) => return Some(v),
            Err(OpError::NotFound) => return None,
            Err(OpError::Pending(id)) => {
                let mut failed = false;
                for c in session.complete_pending(true) {
                    if c.id != id {
                        continue;
                    }
                    match c.result {
                        Ok(Outcome::Value(v)) => return Some(v),
                        Err(OpError::NotFound) => return None,
                        Err(OpError::Io(_)) => failed = true,
                        other => panic!("pending read {id} completed oddly: {other:?}"),
                    }
                }
                assert!(failed, "pending read {id} of key {key} vanished");
            }
            other => panic!("read of {key} refused: {other:?}"),
        }
    }
    panic!("read of key {key} failed 64 consecutive retry rounds");
}

/// Satellite regression: a single transient read fault must not surface as
/// "key absent". Before the bounded-retry fix, `complete_pending` answered
/// `None` for any `IoError`, silently losing durable data.
#[test]
fn transient_read_fault_is_not_key_absent() {
    let fault = FaultDevice::wrap(MemDevice::new(2));
    let store = evicted_store(fault.clone());
    let session = store.start_session();
    for key in [3u64, 40, 99] {
        fault.fail_next_reads(1);
        assert_eq!(
            read_blocking(&session, key),
            Some(key * 10 + 1),
            "one transient fault turned durable key {key} into a false absent"
        );
    }
    // Scripted single-read faults behave identically.
    fault.fail_read_at(0);
    assert_eq!(read_blocking(&session, 7), Some(71));
}

/// A sustained (but probabilistic) fault rate: every read retries through
/// it and lands the true value — zero false "key absent" answers.
#[test]
fn read_fault_rate_never_fabricates_absence() {
    let fault = FaultDevice::wrap(MemDevice::new(2));
    let store = evicted_store(fault.clone());
    fault.set_read_fault_rate(Some(ReadFaultRate { seed: 0xFA17, num: 1, den: 4 }));
    let session = store.start_session();
    for key in 0..KEYSPACE {
        assert_eq!(
            read_through_faults(&session, key),
            Some(key * 10 + 1),
            "key {key} lost under a 1/4 transient read-fault rate"
        );
    }
    assert!(fault.reads_issued() > 0, "workload never touched the device");
}

/// When faults are persistent the retry budget must exhaust into an
/// explicit `Err(OpError::Io)` completion — never a fabricated `NotFound`.
#[test]
fn exhausted_retries_report_failure_not_absence() {
    let fault = FaultDevice::wrap(MemDevice::new(2));
    let store = evicted_store(fault.clone());
    fault.set_read_fault_rate(Some(ReadFaultRate { seed: 1, num: 1, den: 1 }));
    let session = store.start_session();
    match session.read(&5, &0) {
        Err(OpError::Pending(id)) => {
            let done = session.complete_pending(true);
            assert!(
                done.iter().any(|c| c.id == id && matches!(c.result, Err(OpError::Io(_)))),
                "persistently failing read must complete as an I/O error, got {done:?}"
            );
            assert!(
                !done.iter().any(|c| c.id == id && matches!(c.result, Err(OpError::NotFound))),
                "persistently failing read fabricated a false absent"
            );
        }
        other => panic!("key 5 should be disk-resident (pending read), got {other:?}"),
    }
    assert_eq!(session.pending_count(), 0);
    // Clearing the fault restores the key: nothing was lost.
    fault.set_read_fault_rate(None);
    assert_eq!(read_blocking(&session, 5), Some(51));
}

/// Satellite: real-file checkpoint -> process "death" (drop) -> reopen ->
/// recover, with `DeviceStats` proving traffic actually hit the file.
#[test]
fn file_device_checkpoint_recovery_round_trip() {
    let mut path = std::env::temp_dir();
    path.push(format!("faster-recovery-faults-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let ckpt_bytes;
    {
        let device = FileDevice::create(&path, 2).expect("create log file");
        let store: FasterKv<u64, u64, CountStore> =
            FasterKv::new(harness_cfg(), CountStore, device.clone());
        {
            let session = store.start_session();
            for k in 0..600u64 {
                session.upsert(&k, &(k * 3 + 1)).expect("writable");
            }
            session.complete_pending(true);
        }
        let ckpt = store.checkpoint();
        ckpt_bytes = ckpt.to_bytes();
        let stats = device.stats();
        assert!(stats.writes > 0, "checkpoint flushed no pages to the file");
        assert!(
            stats.bytes_written >= 600 * 24,
            "flushed {} bytes, less than the records written",
            stats.bytes_written
        );
        drop(store);
    }

    // "Reboot": reopen the file cold and recover from the serialized
    // checkpoint alone.
    let ckpt = CheckpointData::from_bytes(&ckpt_bytes).expect("checkpoint bytes parse");
    let device = FileDevice::open(&path, 2).expect("reopen log file");
    assert_eq!(device.stats().reads, 0);
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::recover(harness_cfg(), CountStore, device.clone(), &ckpt);
    let replay_stats = device.stats();
    assert!(replay_stats.reads > 0, "recovery replay read nothing from the file");
    {
        let session = store.start_session();
        for k in 0..600u64 {
            assert_eq!(read_blocking(&session, k), Some(k * 3 + 1), "key {k} after reopen");
        }
    }
    let final_stats = device.stats();
    assert!(final_stats.bytes_read >= replay_stats.bytes_read);
    drop(store);
    let _ = std::fs::remove_file(&path);
}

/// Drains `ring` until exactly `n` CQEs have arrived, returned sorted by
/// SQE id (device completions may land out of submission order).
fn reap_exactly(ring: &CompletionRing, n: usize) -> Vec<Cqe> {
    let mut out = Vec::with_capacity(n);
    let mut buf = Vec::new();
    while out.len() < n {
        if ring.reap(&mut buf) == 0 {
            ring.wait_nonempty(Duration::from_millis(5));
            continue;
        }
        out.append(&mut buf);
    }
    assert_eq!(out.len(), n, "reaped more CQEs than SQEs submitted");
    out.sort_by_key(|c| c.id);
    out
}

/// Satellite: transient read faults fire on SQE submission exactly as on
/// the callback path — the scripted count is consumed in submission order
/// and each fault arrives as an error CQE, never a lost completion.
#[test]
fn ring_read_faults_fire_on_sqe_submission() {
    let fault = FaultDevice::wrap(MemDevice::new(1));
    let ring = Arc::new(CompletionRing::new());
    fault.submit(Sqe::write(0, 0, vec![0xAB; 64], &ring));
    assert!(reap_exactly(&ring, 1)[0].result.is_ok());

    fault.fail_next_reads(2);
    for id in 1..=3u64 {
        fault.submit(Sqe::read(id, 0, 64, &ring));
    }
    let cqes = reap_exactly(&ring, 3);
    for cqe in &cqes[..2] {
        assert!(
            matches!(&cqe.result, Err(IoError::Failed(m)) if m.contains("read fault")),
            "SQE {} should have drawn an injected fault, got {:?}",
            cqe.id,
            cqe.result
        );
    }
    assert_eq!(cqes[2].result.as_deref().expect("third read retries clean"), &[0xAB; 64][..]);
    assert_eq!(fault.reads_issued(), 3, "every SQE must consume a read sequence number");
}

/// Satellite: a crash point armed on the write sequence space fires on SQE
/// submission, persists exactly the torn prefix to the inner device, and
/// refuses every subsequent SQE — byte-identical to the callback path's
/// prefix-persisted model.
#[test]
fn ring_write_crash_point_tears_exact_prefix() {
    let mem = MemDevice::new(1);
    let fault = FaultDevice::wrap(mem.clone());
    let ring = Arc::new(CompletionRing::new());
    fault.arm_crash(2, TornWrite::Bytes(24));

    for (id, fill) in [(0u64, 1u8), (1, 2), (2, 3), (3, 4)] {
        fault.submit(Sqe::write(id, id * 64, vec![fill; 64], &ring));
    }
    let cqes = reap_exactly(&ring, 4);
    assert!(cqes[0].result.is_ok());
    assert!(cqes[1].result.is_ok());
    assert!(matches!(&cqes[2].result, Err(IoError::Failed(m)) if m.contains("torn write")));
    assert!(matches!(&cqes[3].result, Err(IoError::Failed(m)) if m.contains("crashed")));
    assert!(fault.crashed());

    // Reads through the crashed wrapper are refused too.
    fault.submit(Sqe::read(9, 0, 8, &ring));
    assert!(
        matches!(&reap_exactly(&ring, 1)[0].result, Err(IoError::Failed(m)) if m.contains("crashed"))
    );

    // The inner device holds exactly the post-crash image: writes 0 and 1
    // in full, 24 bytes of write 2, nothing after.
    let check = Arc::new(CompletionRing::new());
    mem.submit(Sqe::read(0, 0, 64, &check));
    mem.submit(Sqe::read(1, 64, 64, &check));
    mem.submit(Sqe::read(2, 128, 24, &check));
    let back = reap_exactly(&check, 3);
    assert_eq!(back[0].result.as_deref().unwrap(), &[1u8; 64][..]);
    assert_eq!(back[1].result.as_deref().unwrap(), &[2u8; 64][..]);
    assert_eq!(back[2].result.as_deref().unwrap(), &[3u8; 24][..]);
    mem.submit(Sqe::read(3, 128, 64, &check));
    if let Ok(bytes) = &reap_exactly(&check, 1)[0].result {
        assert_ne!(&bytes[24..], &[3u8; 40][..], "bytes past the torn prefix persisted");
    }
}

/// Satellite: ring-routed and callback-routed writes draw from one write
/// sequence space, so a crash point lands on the same write regardless of
/// route, and after the crash both routes refuse.
#[test]
fn ring_and_callback_paths_share_one_sequence_space() {
    let fault = FaultDevice::wrap(MemDevice::new(1));
    let ring = Arc::new(CompletionRing::new());
    fault.arm_crash(3, TornWrite::Nothing);

    // wsn 0 (ring), 1 (callback), 2 (ring), 3 (callback — the crash point).
    let (tx, rx) = std::sync::mpsc::channel();
    fault.submit(Sqe::write(0, 0, vec![1; 32], &ring));
    let tx0 = tx.clone();
    fault.write_async(32, vec![2; 32], Box::new(move |r| tx0.send(r).unwrap()));
    fault.submit(Sqe::write(2, 64, vec![3; 32], &ring));
    fault.write_async(96, vec![4; 32], Box::new(move |r| tx.send(r).unwrap()));

    assert!(reap_exactly(&ring, 2).iter().all(|c| c.result.is_ok()));
    let cb: Vec<_> =
        (0..2).map(|_| rx.recv_timeout(Duration::from_secs(5)).expect("callback ran")).collect();
    assert_eq!(cb.iter().filter(|r| r.is_ok()).count(), 1);
    assert!(cb.iter().any(|r| matches!(r, Err(IoError::Failed(m)) if m.contains("torn write"))));
    assert!(fault.crashed());

    // Post-crash refusal on both routes.
    fault.submit(Sqe::write(9, 256, vec![9; 8], &ring));
    assert!(reap_exactly(&ring, 1)[0].result.is_err());
    let (tx2, rx2) = std::sync::mpsc::channel();
    fault.write_async(256, vec![9; 8], Box::new(move |r| tx2.send(r).unwrap()));
    assert!(rx2.recv_timeout(Duration::from_secs(5)).expect("callback ran").is_err());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Satellite: corruption of serialized checkpoint bytes — truncation at
    /// any point or any single bit flip — must yield a typed
    /// `CheckpointError` (or, in the astronomically unlikely
    /// checksum-collision case, the exact original), and must never panic or
    /// produce a differing checkpoint.
    #[test]
    fn corrupted_checkpoint_bytes_never_parse_to_garbage(
        t1 in 0u64..Address::MASK,
        span in 0u64..1_000_000,
        begin in 0u64..Address::MASK,
        k_bits in 1u8..16,
        tag_bits in 1u8..15,
        entries in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..32),
        cut_raw in any::<u64>(),
        flip_raw in any::<u64>(),
    ) {
        let t2 = t1.saturating_add(span) & Address::MASK;
        let data = CheckpointData {
            t1: Address::new(t1),
            t2: Address::new(t2),
            begin: Address::new(begin.min(t1)),
            index: faster_index::IndexCheckpoint { k_bits, tag_bits, entries },
        };
        let bytes = data.to_bytes();
        // Pristine bytes round-trip exactly.
        prop_assert_eq!(CheckpointData::from_bytes(&bytes).as_ref().ok(), Some(&data));

        // Truncation: every strict prefix is rejected (with a typed error)
        // or identical.
        let cut = (cut_raw % bytes.len() as u64) as usize;
        match CheckpointData::from_bytes(&bytes[..cut]) {
            Err(_) => {}
            Ok(parsed) => prop_assert_eq!(&parsed, &data, "truncated parse at cut {}", cut),
        }

        // Single bit flip anywhere: rejected or identical.
        let mut flipped = bytes.clone();
        let bit = (flip_raw % (bytes.len() as u64 * 8)) as usize;
        flipped[bit / 8] ^= 1 << (bit % 8);
        match CheckpointData::from_bytes(&flipped) {
            Err(_) => {}
            Ok(parsed) => prop_assert_eq!(&parsed, &data, "bit flip {} parsed to garbage", bit),
        }
    }
}
