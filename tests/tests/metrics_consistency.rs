//! Metrics-consistency oracle (DESIGN.md §8): a seeded concurrent workload
//! whose exact operation counts are known, followed by assertions on the
//! counter identities the instrumentation guarantees:
//!
//! * `reads == rc_hits + mem_reads + reads_pending` — every public read is
//!   classified exactly once, at its first synchronous return.
//! * `writes == in_place + rcu + appends` — every successful mutation lands
//!   in exactly one update-scheme bucket.
//! * `deltas ⊆ appends`, `io_issued == io_completed` once drained, and (with
//!   a read cache) `hits + misses == reads`.
//!
//! With `--features metrics-off` every counter is compiled to a no-op, so
//! the exact-count assertions are skipped (the identities hold trivially).

use faster_core::{BatchOp, CountStore, FasterKv, FasterKvConfig};
use faster_hlog::HLogConfig;
use faster_index::IndexConfig;
use faster_integration_tests::{read_blocking, rmw_blocking};
use faster_storage::MemDevice;
use std::sync::{Arc, Barrier};

const THREADS: u64 = 4;
const OPS_PER_THREAD: u64 = 6_000;
const KEYS_PER_THREAD: u64 = 512;

fn small_cfg() -> FasterKvConfig {
    FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 })
        // Small buffer so the workload spills and reads go pending.
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 8, mutable_pages: 2, io_threads: 2 })
        .with_max_sessions(8)
        .with_refresh_interval(64)
}

/// Per-thread tally of public operations actually issued.
#[derive(Default, Clone, Copy)]
struct Oracle {
    reads: u64,
    upserts: u64,
    rmws: u64,
    deletes: u64,
}

#[test]
fn counter_identities_hold_under_concurrency() {
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(small_cfg(), CountStore, MemDevice::new(2));
    let barrier = Arc::new(Barrier::new(THREADS as usize));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = store.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let session = store.start_session();
                let mut rng = faster_util::XorShift64::new(0xC0FFEE + t);
                let base = t * KEYS_PER_THREAD;
                let mut o = Oracle::default();
                barrier.wait();
                for _ in 0..OPS_PER_THREAD {
                    let k = base + rng.next_below(KEYS_PER_THREAD);
                    match rng.next_below(10) {
                        0..=3 => {
                            session.upsert(&k, &k).unwrap();
                            o.upserts += 1;
                        }
                        4..=6 => {
                            rmw_blocking(&session, k, 1);
                            o.rmws += 1;
                        }
                        7..=8 => {
                            read_blocking(&session, k);
                            o.reads += 1;
                        }
                        _ => {
                            session.delete(&k).unwrap();
                            o.deletes += 1;
                        }
                    }
                }
                session.complete_pending(true);
                o
            })
        })
        .collect();
    let mut exp = Oracle::default();
    for h in handles {
        let o = h.join().unwrap();
        exp.reads += o.reads;
        exp.upserts += o.upserts;
        exp.rmws += o.rmws;
        exp.deletes += o.deletes;
    }

    // Snapshot after every worker session has retired; totals fold the
    // retired accumulator, so nothing is lost with the sessions gone.
    let m = store.metrics();
    let t = &m.sessions.totals;

    // Structural identities: hold under any feature combination (under
    // `metrics-off` both sides are zero).
    assert_eq!(
        t.reads,
        t.rc_hits + t.mem_reads + t.reads_pending,
        "read classification identity; totals: {t:?}"
    );
    assert_eq!(
        t.writes,
        t.in_place + t.rcu + t.appends,
        "write update-scheme identity; totals: {t:?}"
    );
    assert!(t.deltas <= t.appends, "deltas are a subset of appends; totals: {t:?}");
    assert_eq!(t.io_issued, t.io_completed, "all pending I/O drained; totals: {t:?}");
    assert_eq!(t.io_failed, 0, "MemDevice never fails; totals: {t:?}");
    assert_eq!(m.sessions.queue_depth(), 0);
    assert!(m.read_cache.is_none(), "no cache configured");
    assert_eq!(m.sessions.live_sessions, 0, "worker sessions retired");

    // Gauges are filled from the live structures regardless of features.
    assert_eq!(m.index.buckets, 1u64 << m.index.k_bits);
    assert!(m.epoch.current >= m.epoch.safe);
    assert!(m.hlog.tail > 0, "tail gauge populated");
    assert!(m.hlog.tail >= m.hlog.read_only && m.hlog.read_only >= m.hlog.head);

    if cfg!(feature = "metrics-off") {
        return; // counters are compiled out; the exact counts below are all zero
    }

    // Exact op accounting against the oracle.
    assert_eq!(t.reads, exp.reads);
    assert_eq!(t.upserts, exp.upserts);
    assert_eq!(t.rmws, exp.rmws);
    assert_eq!(t.deletes, exp.deletes);
    assert_eq!(t.rc_hits, 0, "no read cache, so no rc-served reads");

    // Every upsert and every completed RMW writes exactly once; deletes
    // write at most once (a miss appends no tombstone).
    assert!(t.writes >= t.upserts + t.rmws, "totals: {t:?}");
    assert!(t.writes <= t.upserts + t.rmws + t.deletes, "totals: {t:?}");

    // The store is sized so the workload actually exercises every path.
    assert!(t.reads_pending > 0, "workload never spilled: {t:?}");
    assert!(t.in_place > 0 && t.appends > 0, "totals: {t:?}");
    assert!(t.io_issued > 0);
}

#[test]
fn read_cache_hit_accounting_matches_session_classification() {
    let cfg = small_cfg().with_read_cache(HLogConfig {
        page_bits: 12,
        buffer_pages: 8,
        mutable_pages: 4,
        io_threads: 1,
    });
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg, CountStore, MemDevice::new(2));
    let session = store.start_session();
    for k in 0..100u64 {
        session.upsert(&k, &(k + 500)).unwrap();
    }
    for k in 10_000..14_000u64 {
        session.upsert(&k, &1).unwrap(); // push 0..100 to disk
    }
    store.log().flush_barrier().unwrap();

    // First pass populates the cache from disk; second pass hits it.
    for k in 0..50u64 {
        assert_eq!(read_blocking(&session, k), Some(k + 500));
    }
    for k in 0..50u64 {
        assert_eq!(read_blocking(&session, k), Some(k + 500));
    }

    let m = store.metrics();
    let t = &m.sessions.totals;
    let rc = m.read_cache.as_ref().expect("cache configured");
    assert_eq!(
        rc.hits + rc.misses,
        t.reads,
        "every read while caching is on is a hit or a miss; rc: {rc:?}, totals: {t:?}"
    );
    assert_eq!(rc.hits, t.rc_hits, "cache hits mirror session classification");
    assert_eq!(t.reads, t.rc_hits + t.mem_reads + t.reads_pending);
    if cfg!(feature = "metrics-off") {
        return;
    }
    assert_eq!(t.reads, 100);
    assert!(rc.inserts > 0, "cold reads populated the cache: {rc:?}");
    assert!(t.rc_hits > 0, "second pass hit the cache: {t:?}");
    assert!(rc.hit_rate() > 0.0);
}

#[test]
fn batched_ops_keep_the_identities() {
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(small_cfg(), CountStore, MemDevice::new(2));
    let session = store.start_session();
    let keys: Vec<u64> = (0..256u64).collect();
    let pairs: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k * 2)).collect();
    session.upsert_batch(&pairs).unwrap();
    for k in 5_000..9_000u64 {
        session.upsert(&k, &1).unwrap(); // spill so some batched reads go pending
    }
    store.log().flush_barrier().unwrap();

    let results = session.read_batch(&keys, &0);
    assert_eq!(results.len(), keys.len());
    session.complete_pending(true);

    let mixed: Vec<BatchOp<u64, u64, u64>> = (0..64u64)
        .map(|i| match i % 4 {
            0 => BatchOp::Upsert { key: i, value: i },
            1 => BatchOp::Rmw { key: i, input: 1 },
            2 => BatchOp::Read { key: i, input: 0 },
            _ => BatchOp::Delete { key: i },
        })
        .collect();
    let outcomes = session.execute_batch(&mixed);
    assert_eq!(outcomes.len(), mixed.len());
    session.complete_pending(true);

    let m = store.metrics();
    let t = &m.sessions.totals;
    assert_eq!(t.reads, t.rc_hits + t.mem_reads + t.reads_pending, "totals: {t:?}");
    assert_eq!(t.writes, t.in_place + t.rcu + t.appends, "totals: {t:?}");
    assert_eq!(t.io_issued, t.io_completed);
    if cfg!(feature = "metrics-off") {
        return;
    }
    assert_eq!(t.batches, 3, "upsert_batch + read_batch + execute_batch");
    assert_eq!(t.reads, 256 + 16);
    assert_eq!(t.upserts, 256 + 4_000 + 16);
    assert!(t.reads_pending > 0, "batched reads straddled the disk: {t:?}");
}

/// Scalar ops are the only timed ones, so under `metrics-timing` each
/// histogram's population must equal the matching op counter exactly.
#[cfg(all(feature = "metrics-timing", not(feature = "metrics-off")))]
#[test]
fn latency_histograms_count_every_scalar_op() {
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(small_cfg(), CountStore, MemDevice::new(1));
    let session = store.start_session();
    for k in 0..100u64 {
        session.upsert(&k, &k);
    }
    for k in 0..50u64 {
        rmw_blocking(&session, k, 1);
    }
    for k in 0..70u64 {
        read_blocking(&session, k);
    }
    for k in 0..10u64 {
        session.delete(&k);
    }
    session.complete_pending(true);

    let m = store.metrics();
    let lat = m.sessions.latency.as_ref().expect("timing feature + latency enabled");
    assert_eq!(lat.upsert.total, 100);
    assert_eq!(lat.rmw.total, 50);
    assert_eq!(lat.read.total, 70);
    assert_eq!(lat.delete.total, 10);
    assert!(lat.read.max >= lat.read.p50());

    // Flipping latency off in config suppresses both recording and export.
    let quiet_cfg = small_cfg().with_metrics(faster_core::MetricsConfig { latency: false });
    let quiet: FasterKv<u64, u64, CountStore> =
        FasterKv::new(quiet_cfg, CountStore, MemDevice::new(1));
    let qs = quiet.start_session();
    qs.upsert(&1, &1);
    assert!(quiet.metrics().sessions.latency.is_none());
}
