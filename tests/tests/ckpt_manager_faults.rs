//! In-checkpoint crash sweeps and manifest-arbitration fault tests for the
//! atomic multi-generation checkpoint commit (`CheckpointManager`).
//!
//! The tentpole sweeps arm a crash at **every device write and every flush
//! barrier issued inside `checkpoint_store()` itself** — log page flushes,
//! the generation blob write, and the manifest slot write all share one
//! `FaultDomain`, so the sweep walks the interleaved stream. Each swept
//! point must recover to the in-flight generation iff its commit landed,
//! else to the previous generation, matching the oracle snapshot exactly.
//!
//! Sharded via `FASTER_FAULT_SEED_BASE` / `FASTER_FAULT_SEEDS` like the
//! other fault sweeps; failures print their `(seed, point)` for replay.

use faster_core::checkpoint::{CheckpointData, CheckpointError};
use faster_core::ckpt_manager::{self, CheckpointConfig, CheckpointManager, MANIFEST_SLOT_SIZE};
use faster_core::{CountStore, FasterKv};
use faster_integration_tests::fault_harness::{
    fault_seed_range, harness_cfg, run_in_checkpoint_crash_case, CkptCrashPoint, KEYSPACE,
};
use faster_integration_tests::read_blocking as session_read;
use faster_storage::{Device, MemDevice, TornWrite};
use faster_util::Address;
use proptest::prelude::*;
use std::sync::Arc;

fn write_raw(dev: &Arc<dyn Device>, offset: u64, data: Vec<u8>) {
    let (tx, rx) = std::sync::mpsc::channel();
    dev.write_async(offset, data, Box::new(move |r| tx.send(r).unwrap()));
    rx.recv().unwrap().unwrap();
}

fn read_raw(dev: &Arc<dyn Device>, offset: u64, len: usize) -> Vec<u8> {
    let (tx, rx) = std::sync::mpsc::channel();
    dev.read_async(offset, len, Box::new(move |r| tx.send(r).unwrap()));
    rx.recv().unwrap().unwrap()
}

/// Tentpole sweep, write axis: crash at every device write issued inside
/// `checkpoint_store()`, cycling the torn-write model so each seed sees
/// nothing-persisted, byte-torn, and sector-torn crash points.
#[test]
fn in_checkpoint_write_crash_sweep() {
    let mut cases = 0u64;
    let mut fell_back = 0u64;
    let mut committed = 0u64;
    for seed in fault_seed_range(4) {
        // Dry run bounds the sweep; a second dry run guards the determinism
        // the bound depends on (single-threaded driving => stable counts).
        let dry = run_in_checkpoint_crash_case(seed, None);
        assert!(dry.commit_ok && dry.recovered_gen == 2 && dry.fallbacks == 0);
        assert!(
            dry.ckpt_writes >= 2,
            "seed {seed}: checkpoint issued only {} writes (blob + manifest missing?)",
            dry.ckpt_writes
        );
        let dry2 = run_in_checkpoint_crash_case(seed, None);
        assert_eq!(
            (dry.ckpt_writes, dry.ckpt_flushes),
            (dry2.ckpt_writes, dry2.ckpt_flushes),
            "seed {seed}: checkpoint I/O schedule is nondeterministic; sweep bound invalid"
        );

        for k in 0..dry.ckpt_writes {
            let torn = match k % 3 {
                0 => TornWrite::Nothing,
                1 => TornWrite::Bytes(((seed.wrapping_mul(31) + k * 7) % 4600) as usize),
                _ => TornWrite::SeededSectors { seed: seed ^ (k << 8) },
            };
            let report =
                run_in_checkpoint_crash_case(seed, Some(CkptCrashPoint::Write(k, torn)));
            assert!(
                report.crashed,
                "seed {seed}: armed write {k} of {} never fired",
                dry.ckpt_writes
            );
            cases += 1;
            if report.recovered_gen == 1 {
                fell_back += 1;
            } else {
                committed += 1;
            }
        }
    }
    // Crashing before the manifest write lands must fall back; a torn-but-
    // fully-persisted manifest may still recover the in-flight generation.
    assert!(cases >= 8, "write sweep ran only {cases} cases");
    assert!(fell_back > 0, "no swept write point exercised the fallback path");
    // `committed` may be 0: recovery to the in-flight generation on the
    // write axis requires a full-prefix tear of the final manifest write.
    let _ = committed;
}

/// Tentpole sweep, flush axis: crash at every flush barrier issued inside
/// `checkpoint_store()` — the fsync edges of the commit protocol. A crash
/// at a barrier makes that barrier return `Err` (its durability is
/// unknown), so **no armed flush point may ever ack the commit** — the
/// fsync-error-propagation regression this sweep pins down. The manifest
/// may still have persisted (writes before the barrier completed); recovery
/// arbitration then finds the in-flight generation even though the commit
/// was refused, which the one-directional contract allows.
#[test]
fn in_checkpoint_flush_crash_sweep() {
    let mut saw_inflight_recovered = false;
    let mut saw_fallback = false;
    for seed in fault_seed_range(4) {
        let dry = run_in_checkpoint_crash_case(seed, None);
        assert!(
            dry.ckpt_flushes >= 3,
            "seed {seed}: expected log + blob + manifest barriers, saw {}",
            dry.ckpt_flushes
        );
        for j in 0..dry.ckpt_flushes {
            let report = run_in_checkpoint_crash_case(seed, Some(CkptCrashPoint::Flush(j)));
            assert!(report.crashed, "seed {seed}: armed flush {j} never fired");
            assert!(
                !report.commit_ok,
                "seed {seed}: flush {j} crashed (barrier returned Err) yet \
                 checkpoint_store acked the commit"
            );
            if report.recovered_gen == 2 {
                saw_inflight_recovered = true;
            } else {
                saw_fallback = true;
            }
        }
    }
    // The barrier after the manifest write: the slot is durable, so
    // arbitration recovers the in-flight generation despite the refused
    // ack. Earlier barriers must fall back.
    assert!(
        saw_inflight_recovered,
        "no flush point left a persisted-but-unacked manifest for arbitration"
    );
    assert!(saw_fallback, "no flush point exercised the fallback path");
}

/// Fallback chain deeper than one step: with the two newest generation
/// blobs corrupted on the device, recovery walks back two generations and
/// the store matches that generation's oracle exactly.
#[test]
fn fallback_chain_walks_multiple_generations() {
    let log_dev: Arc<dyn Device> = MemDevice::new(2);
    let ckpt_dev: Arc<dyn Device> = MemDevice::new(1);
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(harness_cfg(), CountStore, log_dev.clone());
    let mgr = CheckpointManager::new(ckpt_dev.clone(), CheckpointConfig::default());

    for round in 0..3u64 {
        {
            let session = store.start_session();
            for k in 0..KEYSPACE {
                let _ = session.upsert(&k, &(k * 100 + round + 1));
            }
            session.complete_pending(true);
        }
        mgr.checkpoint_store(&store).expect("fault-free commit");
    }
    let gens = mgr.generations();
    assert_eq!(gens.len(), 3);
    // Corrupt the two newest blobs in place.
    for g in &gens[1..] {
        let mut blob = read_raw(&ckpt_dev, g.blob_offset, g.blob_len as usize);
        let at = (g.gen as usize * 13) % blob.len();
        blob[at] ^= 0x5A;
        write_raw(&ckpt_dev, g.blob_offset, blob);
    }
    drop(store);
    log_dev.flush_barrier().unwrap();

    let (recovered, _mgr2, rec) = ckpt_manager::recover_store::<u64, u64, CountStore>(
        harness_cfg(),
        CountStore,
        log_dev,
        ckpt_dev,
        CheckpointConfig::default(),
    )
    .expect("generation 1 must survive");
    assert_eq!(rec.gen, gens[0].gen);
    assert_eq!(rec.fallbacks(), 2);
    for (skipped_gen, err) in &rec.skipped {
        assert!(
            matches!(err, CheckpointError::ChecksumMismatch),
            "gen {skipped_gen} skipped for the wrong reason: {err:?}"
        );
    }
    let session = recovered.start_session();
    for k in 0..KEYSPACE {
        // Round 0's values: k * 100 + 1.
        assert_eq!(session_read(&session, k), Some(k * 100 + 1), "key {k} at fallback depth 2");
    }
}

/// GC satellite: the truncation frontier can never climb above the `begin`
/// of a retained generation, and pruning releases the clamp.
#[test]
fn gc_clamp_follows_retention() {
    let log_dev: Arc<dyn Device> = MemDevice::new(2);
    let ckpt_dev: Arc<dyn Device> = MemDevice::new(1);
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(harness_cfg(), CountStore, log_dev.clone());
    let mgr = CheckpointManager::new(ckpt_dev, CheckpointConfig { retain: 8, auto_prune: true });

    // Two generations with log growth (and a begin shift) between them.
    {
        let session = store.start_session();
        for k in 0..KEYSPACE {
            let _ = session.upsert(&k, &(k + 1));
        }
        session.complete_pending(true);
    }
    mgr.checkpoint_store(&store).unwrap();
    {
        let session = store.start_session();
        for k in 0..4000u64 {
            let _ = session.upsert(&(KEYSPACE + k), &k);
        }
        session.complete_pending(true);
    }
    mgr.checkpoint_store(&store).unwrap();

    let gens = mgr.generations();
    let oldest_begin = gens.iter().map(|g| g.begin).min().unwrap();
    assert_eq!(mgr.safe_truncation_bound(), Some(oldest_begin));

    // A truncation request far above the bound is clamped to it...
    let tail = store.log().tail_address();
    let truncated = mgr.gc_truncate(&store, tail);
    assert_eq!(truncated, oldest_begin);
    assert!(store.log().begin_address() <= oldest_begin);

    // ...and after pruning to the newest generation only, the clamp rises
    // to that generation's begin.
    mgr.set_retain(1);
    assert_eq!(mgr.prune().unwrap(), gens.len() - 1);
    let new_bound = mgr.safe_truncation_bound().unwrap();
    assert!(new_bound >= oldest_begin);
    let truncated = mgr.gc_truncate(&store, tail);
    assert_eq!(truncated, new_bound);

    // The retained generation stays fully loadable after the truncation.
    let g = mgr.generations()[0];
    assert!(mgr.load_generation(g.gen).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Satellite: manifest arbitration under arbitrary corruption. Three
    /// generations are committed (slot layout: slot 1 holds seq 3 listing
    /// gens {1,2,3}, slot 0 holds seq 2 listing {1,2}); the test then
    /// corrupts any subset of {slot 0, slot 1, blob 1, blob 2, blob 3} with
    /// seeded byte flips inside the checksummed region. Recovery must never
    /// panic and must select exactly the generation an independent
    /// walk of the corruption mask predicts (or `NoValidGeneration`).
    #[test]
    fn manifest_arbitration_survives_arbitrary_corruption(
        mask in 0u32..32,
        flip_seed in any::<u64>(),
    ) {
        let ckpt_dev: Arc<dyn Device> = MemDevice::new(1);
        let mgr = CheckpointManager::new(ckpt_dev.clone(), CheckpointConfig::default());
        let mut datas = Vec::new();
        for i in 1..=3u64 {
            let data = CheckpointData {
                t1: Address::new(64 * i),
                t2: Address::new(64 * i + 32),
                begin: Address::new(64),
                index: faster_index::IndexCheckpoint {
                    k_bits: 8,
                    tag_bits: 15,
                    entries: vec![(i, i * 7), (i + 1, i * 11)],
                },
            };
            mgr.commit(&data).unwrap();
            datas.push(data);
        }
        let gens = mgr.generations();
        prop_assert_eq!(gens.len(), 3);
        drop(mgr);

        // mask bits: 0 -> slot 0, 1 -> slot 1, 2..=4 -> blobs of gen 1..=3.
        let corrupt_slot0 = mask & 1 != 0;
        let corrupt_slot1 = mask & 2 != 0;
        let corrupt_blob = [mask & 4 != 0, mask & 8 != 0, mask & 16 != 0];
        for slot in 0..2u64 {
            if (slot == 0 && corrupt_slot0) || (slot == 1 && corrupt_slot1) {
                let base = slot * MANIFEST_SLOT_SIZE;
                let mut bytes = read_raw(&ckpt_dev, base, MANIFEST_SLOT_SIZE as usize);
                // Flip inside the checksummed body (count on disk: slot 1
                // has 3 records, slot 0 has 2), never the zero padding.
                let count = if slot == 1 { 3 } else { 2 };
                let body = 24 + count * 64 + 8;
                let at = (faster_util::hash_u64(flip_seed ^ slot) % body as u64) as usize;
                bytes[at] ^= 0x5A;
                write_raw(&ckpt_dev, base, bytes);
            }
        }
        for (i, g) in gens.iter().enumerate() {
            if corrupt_blob[i] {
                let mut blob = read_raw(&ckpt_dev, g.blob_offset, g.blob_len as usize);
                let at = (faster_util::hash_u64(flip_seed ^ g.gen) % g.blob_len) as usize;
                blob[at] ^= 0x5A;
                write_raw(&ckpt_dev, g.blob_offset, blob);
            }
        }

        // Independent expectation from the corruption mask alone: the
        // newest slot that survives fixes the candidate list; the newest
        // candidate with a clean blob wins.
        let candidates: &[usize] = if !corrupt_slot1 {
            &[2, 1, 0] // gens 3, 2, 1
        } else if !corrupt_slot0 {
            &[1, 0] // gens 2, 1
        } else {
            &[]
        };
        let expected = candidates.iter().copied().find(|&i| !corrupt_blob[i]);

        match (
            CheckpointManager::recover_latest(ckpt_dev, CheckpointConfig::default()),
            expected,
        ) {
            (Ok((_mgr, rec)), Some(i)) => {
                prop_assert_eq!(rec.gen, gens[i].gen, "arbitration picked the wrong generation");
                prop_assert_eq!(&rec.data, &datas[i]);
                // Everything newer than the winner was skipped with a reason.
                prop_assert_eq!(rec.fallbacks(), candidates.iter().position(|&c| c == i).unwrap());
            }
            (Err(CheckpointError::NoValidGeneration), None) => {}
            (got, want) => panic!(
                "mask {mask:#07b}: expected {want:?}, arbitration returned {:?}",
                got.map(|(_m, rec)| (rec.gen, rec.fallbacks()))
            ),
        }
    }
}
