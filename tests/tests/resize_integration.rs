//! Index resizing over a live store with spilled data — exercises chunked
//! migration, record relinking, shared disk tails (grow) and merge
//! meta-records (shrink) end to end (Appendix B).

use faster_core::{CountStore, FasterKv, FasterKvConfig};
use faster_hlog::HLogConfig;
use faster_index::IndexConfig;
use faster_integration_tests::read_blocking;
use faster_storage::MemDevice;
use std::sync::{Arc, Barrier};

fn cfg() -> FasterKvConfig {
    FasterKvConfig {
        index: IndexConfig { k_bits: 6, tag_bits: 15, max_resize_chunks: 4 },
        log: HLogConfig { page_bits: 12, buffer_pages: 4, mutable_pages: 2, io_threads: 2 },
        max_sessions: 16,
        refresh_interval: 32,
        read_cache: None,
    }
}

#[test]
fn grow_with_disk_resident_chains() {
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, MemDevice::new(2));
    let session = store.start_session();
    let n = 3000u64;
    for k in 0..n {
        session.upsert(&k, &(k + 9));
    }
    store.log().flush_barrier();
    assert!(store.log().head_address().raw() > 0, "chains must reach disk");
    let k0 = store.index().k_bits();
    assert!(store.grow_index(Some(&session)));
    assert_eq!(store.index().k_bits(), k0 + 1);
    for k in (0..n).step_by(13) {
        assert_eq!(read_blocking(&session, k), Some(k + 9), "key {k} after grow");
    }
}

#[test]
fn shrink_with_disk_resident_chains_links_meta_records() {
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, MemDevice::new(2));
    let session = store.start_session();
    let n = 3000u64;
    for k in 0..n {
        session.upsert(&k, &(k * 2));
    }
    store.log().flush_barrier();
    assert!(store.log().head_address().raw() > 0);
    assert!(store.shrink_index(Some(&session)));
    // All keys remain reachable — including through merge meta-records.
    for k in (0..n).step_by(7) {
        assert_eq!(read_blocking(&session, k), Some(k * 2), "key {k} after shrink");
    }
    // And the store remains writable.
    session.upsert(&1, &42);
    assert_eq!(read_blocking(&session, 1), Some(42));
}

#[test]
fn grow_during_concurrent_traffic() {
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, MemDevice::new(2));
    {
        let s = store.start_session();
        for k in 0..2000u64 {
            s.upsert(&k, &k);
        }
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(3));
    let workers: Vec<_> = (0..2u64)
        .map(|t| {
            let store = store.clone();
            let stop = stop.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let session = store.start_session();
                let mut rng = faster_util::XorShift64::new(t + 77);
                barrier.wait();
                // Bounded loop: unbounded traffic starves the resizer on a
                // single-core host (each op re-pins migration chunks, and
                // the spinning workers monopolize the CPU), turning this
                // test into a livelock. The bound keeps traffic flowing
                // through the grow on any real machine while guaranteeing
                // the workers eventually drain and let migration finish.
                let mut iters = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) && iters < 200_000 {
                    let k = rng.next_below(2000);
                    session.upsert(&k, &k);
                    let _ = session.read(&k, &0);
                    session.complete_pending(false);
                    iters += 1;
                }
                session.complete_pending(true);
            })
        })
        .collect();
    barrier.wait();
    assert!(store.grow_index(None), "grow while traffic flows");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    let session = store.start_session();
    for k in (0..2000u64).step_by(11) {
        assert_eq!(read_blocking(&session, k), Some(k), "key {k}");
    }
}
