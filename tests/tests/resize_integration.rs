//! Index resizing over a live store with spilled data — exercises chunked
//! migration, record relinking, shared disk tails (grow) and merge
//! meta-records (shrink) end to end (Appendix B).

use faster_core::{CountStore, FasterKv, FasterKvConfig};
use faster_hlog::HLogConfig;
use faster_index::IndexConfig;
use faster_integration_tests::read_blocking;
use faster_storage::MemDevice;
use proptest::prelude::*;
use std::sync::{Arc, Barrier};

fn cfg() -> FasterKvConfig {
    FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 6, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 4, mutable_pages: 2, io_threads: 2 })
        .with_max_sessions(16)
        .with_refresh_interval(32)
}

#[test]
fn grow_with_disk_resident_chains() {
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, MemDevice::new(2));
    let session = store.start_session();
    let n = 3000u64;
    for k in 0..n {
        session.upsert(&k, &(k + 9)).unwrap();
    }
    store.log().flush_barrier().unwrap();
    assert!(store.log().head_address().raw() > 0, "chains must reach disk");
    let k0 = store.index().k_bits();
    assert!(store.grow_index(Some(&session)));
    assert_eq!(store.index().k_bits(), k0 + 1);
    for k in (0..n).step_by(13) {
        assert_eq!(read_blocking(&session, k), Some(k + 9), "key {k} after grow");
    }
}

#[test]
fn shrink_with_disk_resident_chains_links_meta_records() {
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, MemDevice::new(2));
    let session = store.start_session();
    let n = 3000u64;
    for k in 0..n {
        session.upsert(&k, &(k * 2)).unwrap();
    }
    store.log().flush_barrier().unwrap();
    assert!(store.log().head_address().raw() > 0);
    assert!(store.shrink_index(Some(&session)));
    // All keys remain reachable — including through merge meta-records.
    for k in (0..n).step_by(7) {
        assert_eq!(read_blocking(&session, k), Some(k * 2), "key {k} after shrink");
    }
    // And the store remains writable.
    session.upsert(&1, &42).unwrap();
    assert_eq!(read_blocking(&session, 1), Some(42));
}

#[test]
fn grow_during_concurrent_traffic() {
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, MemDevice::new(2));
    {
        let s = store.start_session();
        for k in 0..2000u64 {
            s.upsert(&k, &k).unwrap();
        }
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(3));
    let workers: Vec<_> = (0..2u64)
        .map(|t| {
            let store = store.clone();
            let stop = stop.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let session = store.start_session();
                let mut rng = faster_util::XorShift64::new(t + 77);
                barrier.wait();
                // Unbounded: workers hammer the store until told to stop.
                // The resize must finish *under* this traffic — prioritized
                // chunk claims guarantee the migrator drains pins in bounded
                // time, even when saturated ops share a single core.
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let k = rng.next_below(2000);
                    session.upsert(&k, &k).unwrap();
                    let _ = session.read(&k, &0);
                    session.complete_pending(false);
                }
                session.complete_pending(true);
            })
        })
        .collect();
    barrier.wait();
    // Run the grow on its own thread so the test can hold it to a wall-clock
    // deadline while the workers keep running at full rate.
    let (tx, rx) = std::sync::mpsc::channel();
    let grower = {
        let store = store.clone();
        std::thread::spawn(move || {
            let _ = tx.send(store.grow_index(None));
        })
    };
    match rx.recv_timeout(std::time::Duration::from_secs(60)) {
        Ok(ok) => assert!(ok, "grow while traffic flows"),
        Err(_) => panic!(
            "grow did not complete within 60s under unbounded worker traffic — \
             resize claim-priority regression (migration starved by op pins)"
        ),
    }
    grower.join().unwrap();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    let session = store.start_session();
    for k in (0..2000u64).step_by(11) {
        assert_eq!(read_blocking(&session, k), Some(k), "key {k}");
    }
}

#[test]
fn shrink_during_concurrent_traffic() {
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, MemDevice::new(2));
    {
        let s = store.start_session();
        for k in 0..2000u64 {
            s.upsert(&k, &(k + 3)).unwrap();
        }
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(3));
    let workers: Vec<_> = (0..2u64)
        .map(|t| {
            let store = store.clone();
            let stop = stop.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let session = store.start_session();
                let mut rng = faster_util::XorShift64::new(t + 177);
                barrier.wait();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let k = rng.next_below(2000);
                    session.upsert(&k, &(k + 3)).unwrap();
                    let _ = session.read(&k, &0);
                    session.complete_pending(false);
                }
                session.complete_pending(true);
            })
        })
        .collect();
    barrier.wait();
    let (tx, rx) = std::sync::mpsc::channel();
    let shrinker = {
        let store = store.clone();
        std::thread::spawn(move || {
            let _ = tx.send(store.shrink_index(None));
        })
    };
    match rx.recv_timeout(std::time::Duration::from_secs(60)) {
        Ok(ok) => assert!(ok, "shrink while traffic flows"),
        Err(_) => panic!(
            "shrink did not complete within 60s under unbounded worker traffic — \
             resize claim-priority regression (migration starved by op pins)"
        ),
    }
    shrinker.join().unwrap();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    let session = store.start_session();
    for k in (0..2000u64).step_by(11) {
        assert_eq!(read_blocking(&session, k), Some(k + 3), "key {k}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Grow → shrink → grow round-trips with disk-resident tails preserve
    /// every key. Each resize re-threads hash chains whose tails live on
    /// disk (`link_disk_tails` on grow, merge meta-records on shrink), and
    /// writes between the resizes chain fresh mutable records onto those
    /// re-threaded tails — the combination that loses keys if any migration
    /// step drops or mislinks an entry.
    #[test]
    fn grow_shrink_grow_round_trip_preserves_keys(
        keys in proptest::collection::vec((0u64..4_096, any::<u64>()), 50..300),
        update_stride in 1u64..7,
    ) {
        let store: FasterKv<u64, u64, CountStore> =
            FasterKv::new(cfg(), CountStore, MemDevice::new(2));
        let session = store.start_session();
        let mut model = std::collections::HashMap::new();
        // Filler volume guarantees chains spill to disk regardless of how
        // few random keys this case drew.
        for k in 10_000..12_500u64 {
            session.upsert(&k, &k).unwrap();
            model.insert(k, k);
        }
        for &(k, v) in &keys {
            session.upsert(&k, &v).unwrap();
            model.insert(k, v);
        }
        store.log().flush_barrier().unwrap();
        prop_assert!(store.log().head_address().raw() > 0, "chains must reach disk");

        let k0 = store.index().k_bits();
        prop_assert!(store.grow_index(Some(&session)));
        // Mutate between resizes: new in-memory records now chain onto the
        // grow-re-threaded disk tails.
        for (i, &(k, _)) in keys.iter().enumerate() {
            if (i as u64).is_multiple_of(update_stride) {
                let v2 = model[&k].wrapping_add(1);
                session.upsert(&k, &v2).unwrap();
                model.insert(k, v2);
            }
        }
        prop_assert!(store.shrink_index(Some(&session)));
        store.log().flush_barrier().unwrap();
        prop_assert!(store.grow_index(Some(&session)));
        prop_assert_eq!(store.index().k_bits(), k0 + 1);

        for (&k, &v) in &model {
            prop_assert_eq!(read_blocking(&session, k), Some(v), "key {} after round trip", k);
        }
    }
}
