//! Recovery and failure-injection integration tests (§6.5).

use faster_core::{CountStore, FasterKv, FasterKvConfig};
use faster_hlog::HLogConfig;
use faster_index::IndexConfig;
use faster_integration_tests::read_blocking;
use faster_storage::MemDevice;
use std::sync::Arc;

fn cfg() -> FasterKvConfig {
    FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 12, buffer_pages: 8, mutable_pages: 6, io_threads: 2 })
        .with_max_sessions(16)
        .with_refresh_interval(32)
}

#[test]
fn checkpoint_under_concurrent_updates_recovers_consistently() {
    let device = MemDevice::new(2);
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, device.clone());
    // Writer thread churns while the checkpoint runs.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let store = store.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let session = store.start_session();
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                session.upsert(&(i % 512), &i).unwrap();
                i += 1;
            }
            session.complete_pending(true);
        })
    };
    // Base data.
    {
        let session = store.start_session();
        for k in 10_000..10_500u64 {
            session.upsert(&k, &k).unwrap();
        }
    }
    let data = store.checkpoint();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
    drop(store);

    let store2: FasterKv<u64, u64, CountStore> =
        FasterKv::recover(cfg(), CountStore, device, &data);
    let session = store2.start_session();
    // The stable keys (written before t1) must be intact.
    for k in 10_000..10_500u64 {
        assert_eq!(read_blocking(&session, k), Some(k), "stable key {k}");
    }
    // Churned keys: whatever value is present must be a valid write (any i
    // with i % 512 == k), i.e. the store must not serve corrupt values.
    for k in 0..512u64 {
        if let Some(v) = read_blocking(&session, k) {
            assert_eq!(v % 512, k, "churned key {k} holds torn value {v}");
        }
    }
}

#[test]
fn recovery_replays_fuzzy_window() {
    // Construct a deterministic t1 < t2 window: updates issued between the
    // two tail reads inside checkpoint() are racy by nature, so instead do
    // an explicit two-phase: checkpoint, then verify replay from a *manual*
    // CheckpointData with an early t1 (covering pre-checkpoint records).
    let device = MemDevice::new(2);
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, device.clone());
    {
        let session = store.start_session();
        for k in 0..300u64 {
            session.upsert(&k, &(k + 1)).unwrap();
        }
    }
    let mut data = store.checkpoint();
    // Pretend the fuzzy capture started at the very beginning: replay must
    // then rebuild entries for *all* records and still match.
    data.t1 = store.log().begin_address();
    drop(store);
    let store2: FasterKv<u64, u64, CountStore> =
        FasterKv::recover(cfg(), CountStore, device, &data);
    let session = store2.start_session();
    for k in 0..300u64 {
        assert_eq!(read_blocking(&session, k), Some(k + 1), "key {k}");
    }
}

#[test]
fn injected_read_faults_do_not_wedge_sessions() {
    let device = MemDevice::new(2);
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, device.clone());
    let session = store.start_session();
    session.upsert(&7, &70).unwrap();
    for k in 100..4000u64 {
        session.upsert(&k, &k).unwrap(); // evict key 7
    }
    store.log().flush_barrier().unwrap();
    device.fail_next_reads(1);
    // A transiently faulted read retries and lands the true value: it must
    // neither hang nor fabricate a "key absent" answer.
    assert_eq!(read_blocking(&session, 7), Some(70));
    assert_eq!(session.pending_count(), 0);
    // The injected fault was consumed; the key stays readable.
    assert_eq!(read_blocking(&session, 7), Some(70));
}

#[test]
fn checkpoint_bytes_survive_serialization() {
    let device = MemDevice::new(1);
    let store: FasterKv<u64, u64, CountStore> = FasterKv::new(cfg(), CountStore, device.clone());
    {
        let session = store.start_session();
        for k in 0..100u64 {
            session.upsert(&k, &(k * 5)).unwrap();
        }
    }
    let data = store.checkpoint();
    let bytes = data.to_bytes();
    drop(store);
    let parsed = faster_core::checkpoint::CheckpointData::from_bytes(&bytes).expect("parse");
    assert_eq!(parsed, data);
    let store2: FasterKv<u64, u64, CountStore> =
        FasterKv::recover(cfg(), CountStore, device, &parsed);
    let session = store2.start_session();
    for k in 0..100u64 {
        assert_eq!(read_blocking(&session, k), Some(k * 5));
    }
}
