//! Crash sweeps over a *maintenance window*: a `run_tick` loop whose policy
//! fires a roll-to-tail compaction and then a checkpoint against the store,
//! exactly as the background maintenance service would (ISSUE 8 satellite).
//!
//! The sweeps arm a crash at every device write and every flush barrier
//! issued inside the window — the compaction roll's page flushes and the
//! policy-triggered checkpoint's blob + manifest share one `FaultDomain`,
//! so the sweep walks the interleaved stream. Each swept point must recover
//! to an oracle snapshot: a maintenance-committed generation iff one
//! landed, else the baseline — proving a crashed background compaction can
//! never orphan the fallback generation (the roll/truncate clamp split).
//!
//! Sharded via `FASTER_FAULT_SEED_BASE` / `FASTER_FAULT_SEEDS`; failures
//! print their `(seed, point)` for replay.

use faster_integration_tests::fault_harness::{
    fault_seed_range, run_maintenance_crash_case, MaintCrashPoint,
};
use faster_storage::TornWrite;

/// Write axis: crash at every device write issued inside the maintenance
/// window, cycling the torn-write model so each seed sees nothing-persisted,
/// byte-torn, and sector-torn points.
#[test]
fn maintenance_write_crash_sweep() {
    let mut cases = 0u64;
    let mut fell_back = 0u64;
    for seed in fault_seed_range(3) {
        // Dry run bounds the sweep and proves the window does real work; a
        // second dry run guards the determinism the bound depends on.
        let dry = run_maintenance_crash_case(seed, None);
        assert!(
            dry.compactions >= 1 && dry.rolled >= 1 && dry.commit_ok,
            "seed {seed}: dry window did no work: {dry:?}"
        );
        assert!(
            dry.maint_writes >= 2,
            "seed {seed}: window issued only {} writes (roll + checkpoint missing?)",
            dry.maint_writes
        );
        let dry2 = run_maintenance_crash_case(seed, None);
        assert_eq!(
            (dry.maint_writes, dry.maint_flushes),
            (dry2.maint_writes, dry2.maint_flushes),
            "seed {seed}: maintenance I/O schedule is nondeterministic; sweep bound invalid"
        );

        for k in 0..dry.maint_writes {
            let torn = match k % 3 {
                0 => TornWrite::Nothing,
                1 => TornWrite::Bytes(((seed.wrapping_mul(31) + k * 7) % 4600) as usize),
                _ => TornWrite::SeededSectors { seed: seed ^ (k << 8) },
            };
            let report =
                run_maintenance_crash_case(seed, Some(MaintCrashPoint::Write(k, torn)));
            assert!(
                report.crashed,
                "seed {seed}: armed write {k} of {} never fired",
                dry.maint_writes
            );
            cases += 1;
            if !report.commit_ok {
                fell_back += 1;
            }
        }
    }
    assert!(cases >= 6, "write sweep ran only {cases} cases");
    // Early points (inside the compaction roll, before any checkpoint) must
    // leave the window with no acked generation — recovery then *must* have
    // replayed the baseline over the partially-rolled, clamp-truncated log.
    assert!(
        fell_back > 0,
        "no swept write point crashed before the maintenance checkpoint acked"
    );
}

/// Flush axis: crash at every flush barrier inside the window — the fsync
/// edges of the compaction roll and the checkpoint commit protocol. A crash
/// at a barrier makes it return `Err`, so the window's checkpoint attempt
/// at or after that barrier must report failure, and recovery still lands
/// on a valid oracle snapshot either way.
#[test]
fn maintenance_flush_crash_sweep() {
    let mut saw_fallback = false;
    for seed in fault_seed_range(3) {
        let dry = run_maintenance_crash_case(seed, None);
        assert!(
            dry.maint_flushes >= 2,
            "seed {seed}: expected roll + checkpoint barriers, saw {}",
            dry.maint_flushes
        );
        for j in 0..dry.maint_flushes {
            let report = run_maintenance_crash_case(seed, Some(MaintCrashPoint::Flush(j)));
            assert!(report.crashed, "seed {seed}: armed flush {j} never fired");
            if report.recovered_gen == 1 {
                saw_fallback = true;
            }
        }
    }
    assert!(
        saw_fallback,
        "no flush point exercised the baseline-fallback path"
    );
}
