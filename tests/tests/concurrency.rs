//! Cross-crate concurrency: multiple sessions, mixed operations, spilling
//! log, and epoch-coordinated maintenance all at once.

use faster_core::{CountStore, FasterKv, FasterKvConfig, OpError};
use faster_hlog::HLogConfig;
use faster_index::IndexConfig;
use faster_integration_tests::read_blocking;
use faster_storage::MemDevice;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

fn spilling_config() -> FasterKvConfig {
    FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 8, tag_bits: 15, max_resize_chunks: 4 })
        .with_log(HLogConfig { page_bits: 13, buffer_pages: 8, mutable_pages: 6, io_threads: 2 })
        .with_max_sessions(32)
        .with_refresh_interval(64)
}

#[test]
fn mixed_workload_with_spill_is_exact() {
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(spilling_config(), CountStore, MemDevice::new(2));
    let threads = 6u64;
    let per_thread = 8_000u64;
    let counted_keys = 64u64;
    let barrier = Arc::new(Barrier::new(threads as usize));
    let increments = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let store = store.clone();
            let barrier = barrier.clone();
            let increments = increments.clone();
            std::thread::spawn(move || {
                let session = store.start_session();
                let mut rng = faster_util::XorShift64::new(t + 11);
                barrier.wait();
                for i in 0..per_thread {
                    match rng.next_below(10) {
                        // 60%: counted increments on the hot keys.
                        0..=5 => {
                            let k = rng.next_below(counted_keys);
                            if let Err(OpError::Pending(_)) = session.rmw(&k, &1) {
                                session.complete_pending(true);
                            }
                            increments.fetch_add(1, Ordering::Relaxed);
                        }
                        // 30%: churn writes to cold keys (drives eviction).
                        6..=8 => {
                            let k = 1_000_000 + t * per_thread + i;
                            session.upsert(&k, &i).unwrap();
                        }
                        // 10%: reads anywhere.
                        _ => {
                            let k = rng.next_below(counted_keys * 4);
                            let _ = session.read(&k, &0);
                            session.complete_pending(false);
                        }
                    }
                }
                session.complete_pending(true);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    store.log().flush_barrier().unwrap();
    assert!(store.log().head_address().raw() > 0, "workload must spill");
    let session = store.start_session();
    let mut total = 0u64;
    for k in 0..counted_keys {
        total += read_blocking(&session, k).unwrap_or(0);
    }
    assert_eq!(total, increments.load(Ordering::Relaxed), "all increments accounted");
}

#[test]
fn sessions_register_and_release() {
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(spilling_config(), CountStore, MemDevice::new(1));
    assert_eq!(store.epoch().active_threads(), 0);
    {
        let _s1 = store.start_session();
        let _s2 = store.start_session();
        assert_eq!(store.epoch().active_threads(), 2);
    }
    assert_eq!(store.epoch().active_threads(), 0);
    // Session slots are reusable indefinitely.
    for _ in 0..100 {
        let s = store.start_session();
        s.upsert(&1, &1).unwrap();
    }
    assert_eq!(store.epoch().active_threads(), 0);
}

#[test]
fn concurrent_deletes_and_inserts_converge() {
    let store: FasterKv<u64, u64, CountStore> =
        FasterKv::new(spilling_config(), CountStore, MemDevice::new(2));
    let threads = 4;
    let keys = 32u64;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads as u64)
        .map(|t| {
            let store = store.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let session = store.start_session();
                let mut rng = faster_util::XorShift64::new(t + 5);
                barrier.wait();
                for _ in 0..5_000 {
                    let k = rng.next_below(keys);
                    if rng.next_below(2) == 0 {
                        session.upsert(&k, &(t + 1)).unwrap();
                    } else {
                        session.delete(&k).unwrap();
                    }
                }
                session.complete_pending(true);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Every key must be readable (present or absent) without error, and
    // present keys must hold one of the written values.
    let session = store.start_session();
    for k in 0..keys {
        if let Some(v) = read_blocking(&session, k) {
            assert!((1..=threads as u64).contains(&v), "key {k} holds foreign value {v}");
        }
    }
}
