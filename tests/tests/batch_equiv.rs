//! Property-based equivalence of the batched and scalar operation surfaces:
//! driving one store through `execute_batch` must produce, op for op, the
//! same results as driving a second store through the scalar API — for
//! arbitrary op sequences, arbitrary batch boundaries, and stores small
//! enough that the log spills and reads go pending mid-batch.

use faster_core::{BatchOp, CountStore, FasterKv, FasterKvConfig, OpError, Outcome};
use faster_hlog::HLogConfig;
use faster_index::IndexConfig;
use faster_integration_tests::{read_blocking, rmw_blocking};
use faster_storage::MemDevice;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum ModelOp {
    Upsert(u64, u64),
    Rmw(u64, u64),
    Read(u64),
    Delete(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = ModelOp> {
    prop_oneof![
        (0..key_space, 1u64..100).prop_map(|(k, v)| ModelOp::Upsert(k, v)),
        (0..key_space, 1u64..100).prop_map(|(k, v)| ModelOp::Rmw(k, v)),
        (0..key_space).prop_map(ModelOp::Read),
        (0..key_space).prop_map(ModelOp::Delete),
    ]
}

fn tiny_config() -> FasterKvConfig {
    FasterKvConfig::small()
        .with_index(IndexConfig { k_bits: 4, tag_bits: 15, max_resize_chunks: 2 })
        // Minuscule buffer: sequences regularly spill, so batches straddle
        // resident and on-disk records and reads go pending mid-batch.
        .with_log(HLogConfig { page_bits: 9, buffer_pages: 4, mutable_pages: 2, io_threads: 1 })
        .with_max_sessions(4)
        .with_refresh_interval(8)
}

fn to_batch_op(op: &ModelOp) -> BatchOp<u64, u64, u64> {
    match *op {
        ModelOp::Upsert(k, v) => BatchOp::Upsert { key: k, value: v },
        ModelOp::Rmw(k, v) => BatchOp::Rmw { key: k, input: v },
        ModelOp::Read(k) => BatchOp::Read { key: k, input: 0 },
        ModelOp::Delete(k) => BatchOp::Delete { key: k },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn batched_equals_scalar_op_for_op(
        ops in proptest::collection::vec(op_strategy(32), 1..300),
        batch_len in 1usize..24,
    ) {
        let batched: FasterKv<u64, u64, CountStore> =
            FasterKv::new(tiny_config(), CountStore, MemDevice::new(1));
        let scalar: FasterKv<u64, u64, CountStore> =
            FasterKv::new(tiny_config(), CountStore, MemDevice::new(1));
        let bs = batched.start_session();
        let ss = scalar.start_session();

        // Read results per op index, resolved to Option<value>.
        let mut batched_reads: Vec<(usize, Option<u64>)> = Vec::new();
        let mut scalar_reads: Vec<(usize, Option<u64>)> = Vec::new();

        for (chunk_idx, chunk) in ops.chunks(batch_len).enumerate() {
            let base = chunk_idx * batch_len;
            let batch: Vec<_> = chunk.iter().map(to_batch_op).collect();
            let outcomes = bs.execute_batch(&batch);
            // Resolve: immediate results now, pending ones via one drain.
            let mut waiting: HashMap<u64, usize> = HashMap::new();
            let mut resolved: HashMap<usize, Option<u64>> = HashMap::new();
            for (i, (op, outcome)) in chunk.iter().zip(outcomes.iter()).enumerate() {
                if !matches!(op, ModelOp::Read(_)) {
                    continue;
                }
                match outcome {
                    Ok(Outcome::Value(v)) => {
                        resolved.insert(base + i, Some(*v));
                    }
                    Err(OpError::NotFound) => {
                        resolved.insert(base + i, None);
                    }
                    Err(OpError::Pending(id)) => {
                        waiting.insert(*id, base + i);
                    }
                    other => panic!("batched read refused: {other:?}"),
                }
            }
            // One completion drain per batch (the intended usage pattern).
            loop {
                for done in bs.complete_pending(true) {
                    if let Some(op_idx) = waiting.remove(&done.id) {
                        let value = match done.result {
                            Ok(Outcome::Value(v)) => Some(v),
                            Err(OpError::NotFound) => None,
                            other => panic!("pending batched read failed: {other:?}"),
                        };
                        resolved.insert(op_idx, value);
                    }
                }
                if waiting.is_empty() {
                    break;
                }
            }
            let mut r: Vec<_> = resolved.into_iter().collect();
            r.sort_unstable();
            batched_reads.extend(r);
        }

        for (i, op) in ops.iter().enumerate() {
            match *op {
                ModelOp::Upsert(k, v) => {
                    ss.upsert(&k, &v).expect("scalar upsert refused");
                }
                ModelOp::Rmw(k, v) => rmw_blocking(&ss, k, v),
                ModelOp::Read(k) => scalar_reads.push((i, read_blocking(&ss, k))),
                ModelOp::Delete(k) => {
                    ss.delete(&k).expect("scalar delete refused");
                }
            }
        }
        ss.complete_pending(true);

        prop_assert_eq!(&batched_reads, &scalar_reads, "per-op read results diverge");

        // Final state must agree on the whole key space too.
        for k in 0..32u64 {
            prop_assert_eq!(read_blocking(&bs, k), read_blocking(&ss, k), "final key {}", k);
        }
    }
}
